#include "obs/trace_analyzer.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/sim_time.hpp"

namespace dmp::obs {

std::string_view late_cause_name(LateCause cause) {
  switch (cause) {
    case LateCause::kQueueing: return "queueing";
    case LateCause::kLossFastRtx: return "loss_fast_rtx";
    case LateCause::kRtoStall: return "rto_stall";
    case LateCause::kHolWait: return "hol_wait";
    case LateCause::kPathImbalance: return "path_imbalance";
    case LateCause::kNeverArrived: return "never_arrived";
    case LateCause::kPathFault: return "path_fault";
  }
  return "?";
}

std::int64_t PacketTimeline::pre_tx_wait_ns() const {
  // Earliest station the trace saw the packet at before transmission.
  const std::int64_t start =
      gen_ns >= 0 ? gen_ns : (pull_ns >= 0 ? pull_ns : enqueue_ns);
  if (start < 0 || sends.empty()) return 0;
  return std::max<std::int64_t>(0, sends.front().t_ns - start);
}

std::int64_t PacketTimeline::link_queue_wait_ns() const {
  std::int64_t total = 0;
  for (const HopTraversal& h : hops) {
    if (h.enqueue_ns >= 0 && h.dequeue_ns >= 0) {
      total += h.dequeue_ns - h.enqueue_ns;
    }
  }
  return total;
}

std::int64_t PacketTimeline::reorder_wait_ns() const {
  if (sink_rx_ns < 0 || deliver_ns < 0) return 0;
  return std::max<std::int64_t>(0, deliver_ns - sink_rx_ns);
}

TraceAnalyzer::TraceAnalyzer(const FlightRecorder& recorder)
    : mu_pps_(recorder.mu_pps()),
      epoch_ns_(recorder.epoch_ns()),
      total_packets_(recorder.total_packets()) {
  for (const FlightEvent& e : recorder.events()) {
    if (e.kind == FlightEventKind::kRto) {
      if (e.path >= 0) rto_times_[e.path].push_back(e.t_ns);
      continue;
    }
    if (e.kind == FlightEventKind::kPathFault) {
      // seq carries the fault::FaultKind code: 0 = link_down opens an
      // outage window, 1 = link_up closes it, 2 = burst_loss is a point
      // window.  Rescale (3) shifts capacity but loses nothing — it is
      // not a window, so post-rescale congestion keeps its organic cause.
      if (e.path >= 0) {
        auto& windows = fault_windows_[e.path];
        if (e.seq == 0) {
          windows.emplace_back(e.t_ns,
                               std::numeric_limits<std::int64_t>::max());
        } else if (e.seq == 1) {
          if (!windows.empty() &&
              windows.back().second ==
                  std::numeric_limits<std::int64_t>::max()) {
            windows.back().second = e.t_ns;
          }
        } else if (e.seq == 2) {
          windows.emplace_back(e.t_ns, e.t_ns);
        }
      }
      continue;
    }
    if (e.packet < 0) continue;
    PacketTimeline& tl = timelines_[e.packet];
    tl.packet = e.packet;
    if (e.path >= 0) tl.path = e.path;
    switch (e.kind) {
      case FlightEventKind::kGenerate:
        tl.gen_ns = e.t_ns;
        break;
      case FlightEventKind::kPull:
        tl.pull_ns = e.t_ns;
        break;
      case FlightEventKind::kTcpEnqueue:
        tl.enqueue_ns = e.t_ns;
        break;
      case FlightEventKind::kTcpSend:
        tl.sends.push_back(PacketTimeline::Send{e.t_ns, e.seq, e.attempt,
                                                e.reason, e.cwnd, e.ssthresh});
        ++tl.transmissions;
        break;
      case FlightEventKind::kLinkEnqueue:
        tl.hops.push_back(PacketTimeline::HopTraversal{e.hop, e.t_ns, -1,
                                                       false});
        break;
      case FlightEventKind::kLinkDequeue: {
        // Close the most recent open traversal of this hop.
        for (auto it = tl.hops.rbegin(); it != tl.hops.rend(); ++it) {
          if (it->hop == e.hop && it->dequeue_ns < 0 && !it->dropped) {
            it->dequeue_ns = e.t_ns;
            break;
          }
        }
        break;
      }
      case FlightEventKind::kLinkDrop:
        // Drop-tail discards happen on arrival: the packet never entered
        // the queue, so the drop is its own (terminal) traversal record.
        tl.hops.push_back(PacketTimeline::HopTraversal{e.hop, e.t_ns, -1,
                                                       true});
        ++tl.drops;
        break;
      case FlightEventKind::kSinkRx:
        if (tl.sink_rx_ns < 0) tl.sink_rx_ns = e.t_ns;
        break;
      case FlightEventKind::kDeliver:
        if (tl.deliver_ns < 0) tl.deliver_ns = e.t_ns;
        break;
      case FlightEventKind::kArrive:
        if (tl.arrive_ns < 0) tl.arrive_ns = e.t_ns;
        arrivals_.emplace_back(e.packet, e.t_ns);
        break;
      case FlightEventKind::kRto:
      case FlightEventKind::kPathFault:
        break;  // handled above
      case FlightEventKind::kSchedDecision:
        // Redundancy dispatches (duplicate copies / parity packets) are
        // wire-level extras, not lifecycle stations: the copy that wins
        // the race produces the packet's kArrive like any other.
        break;
    }
  }
}

const PacketTimeline* TraceAnalyzer::timeline(std::int64_t packet) const {
  const auto it = timelines_.find(packet);
  return it == timelines_.end() ? nullptr : &it->second;
}

LateCause TraceAnalyzer::classify(const PacketTimeline& tl) const {
  // 0. Injected fault first: if the packet's flight window overlaps an
  //    outage (or burst-loss instant) on its delivering path, the fault —
  //    not the organic congestion mechanisms below — explains the miss.
  //    Packets reclaimed onto a healthy path are judged against THAT
  //    path's windows, so load shifted by DMP keeps its organic causes.
  if (tl.path >= 0 && tl.arrive_ns >= 0 && !fault_windows_.empty()) {
    const std::int64_t window_start =
        tl.enqueue_ns >= 0
            ? tl.enqueue_ns
            : (tl.sends.empty() ? tl.arrive_ns : tl.sends.front().t_ns);
    const auto it = fault_windows_.find(tl.path);
    if (it != fault_windows_.end()) {
      for (const auto& [start, end] : it->second) {
        if (start <= tl.arrive_ns && end >= window_start) {
          return LateCause::kPathFault;
        }
      }
    }
  }

  // 1. The packet itself was retransmitted: the recovery mechanism of the
  //    last retransmission is the cause (a fast retransmit that later
  //    escalated into a timeout counts as the timeout).
  for (auto it = tl.sends.rbegin(); it != tl.sends.rend(); ++it) {
    if (it->attempt > 1) {
      return it->reason == RtxReason::kRtoRtx ? LateCause::kRtoStall
                                              : LateCause::kLossFastRtx;
    }
  }

  // 2. Sent once, but its flight window spans an RTO on its path: the
  //    window collapse / go-back-N stall delayed it.
  if (tl.path >= 0 && tl.arrive_ns >= 0) {
    const std::int64_t window_start =
        tl.enqueue_ns >= 0
            ? tl.enqueue_ns
            : (tl.sends.empty() ? tl.arrive_ns : tl.sends.front().t_ns);
    const auto it = rto_times_.find(tl.path);
    if (it != rto_times_.end()) {
      for (const std::int64_t t : it->second) {
        if (t >= window_start && t <= tl.arrive_ns) {
          return LateCause::kRtoStall;
        }
      }
    }
  }

  // 3. Clean delivery: the largest wait component dominates.  Precedence
  //    on exact ties: queueing, then head-of-line wait, then imbalance.
  const std::int64_t linkq = tl.link_queue_wait_ns();
  const std::int64_t hol = tl.reorder_wait_ns();
  const std::int64_t pre_tx = tl.pre_tx_wait_ns();
  if (linkq >= hol && linkq >= pre_tx) return LateCause::kQueueing;
  if (hol >= pre_tx) return LateCause::kHolWait;
  return LateCause::kPathImbalance;
}

AttributionReport TraceAnalyzer::attribute(double tau_s,
                                           std::int64_t total_packets) const {
  AttributionReport report;
  report.total_packets =
      total_packets >= 0 ? total_packets : total_packets_;
  if (report.total_packets <= 0) return report;
  if (mu_pps_ <= 0.0) {
    throw std::runtime_error{"trace meta lacks mu_pps; cannot attribute"};
  }

  // Operation-for-operation mirror of
  // StreamTrace::late_fraction_playback_order: iterate arrivals in arrival
  // order, evaluate each against n/mu + tau with the same SimTime
  // integer-nanosecond arithmetic, then count the never-arrived tail.
  const SimTime tau = SimTime::seconds(tau_s);
  std::int64_t seen = 0;
  for (const auto& [packet, t_abs] : arrivals_) {
    if (packet >= report.total_packets) continue;
    ++seen;
    const SimTime arrived = SimTime::nanos(t_abs - epoch_ns_);
    const SimTime playback =
        SimTime::seconds(static_cast<double>(packet) / mu_pps_) + tau;
    if (arrived <= playback) continue;
    PacketVerdict v;
    v.packet = packet;
    v.arrive_rel_ns = arrived.ns();
    v.deadline_rel_ns = playback.ns();
    v.late = true;
    const auto it = timelines_.find(packet);
    v.cause = it == timelines_.end() ? LateCause::kQueueing
                                     : classify(it->second);
    ++report.by_cause[static_cast<std::size_t>(v.cause)];
    ++report.late;
    report.verdicts.push_back(v);
  }
  report.arrived = seen;
  const std::int64_t missing = report.total_packets - seen;
  report.late += missing;
  report.by_cause[static_cast<std::size_t>(LateCause::kNeverArrived)] +=
      missing;
  return report;
}

namespace {

double percentile(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return static_cast<double>(sorted[std::min(index, sorted.size() - 1)]) *
         1e-9;
}

}  // namespace

std::vector<PathHopStats> TraceAnalyzer::path_stats() const {
  std::map<std::int32_t, PathHopStats> stats;
  std::map<std::int32_t, std::vector<std::int64_t>> waits;
  for (const auto& [packet, tl] : timelines_) {
    if (tl.path < 0) continue;
    PathHopStats& s = stats[tl.path];
    s.path = tl.path;
    if (tl.arrive_ns >= 0) ++s.packets_delivered;
    s.drops += tl.drops;
    if (tl.transmissions > 1) s.retransmissions += tl.transmissions - 1;
    for (const auto& h : tl.hops) {
      if (h.enqueue_ns >= 0 && h.dequeue_ns >= 0) {
        waits[tl.path].push_back(h.dequeue_ns - h.enqueue_ns);
      }
    }
  }
  for (const auto& [path, times] : rto_times_) {
    stats[path].path = path;
    stats[path].rtos += times.size();
  }
  std::vector<PathHopStats> result;
  for (auto& [path, s] : stats) {
    auto& w = waits[path];
    std::sort(w.begin(), w.end());
    s.queue_wait_p50_s = percentile(w, 0.50);
    s.queue_wait_p90_s = percentile(w, 0.90);
    s.queue_wait_p99_s = percentile(w, 0.99);
    s.queue_wait_max_s = w.empty() ? 0.0 : static_cast<double>(w.back()) * 1e-9;
    result.push_back(s);
  }
  return result;
}

std::vector<const PacketTimeline*> TraceAnalyzer::retransmitted_packets()
    const {
  std::vector<const PacketTimeline*> result;
  for (const auto& [packet, tl] : timelines_) {
    if (tl.transmissions > 1) result.push_back(&tl);
  }
  return result;
}

// --- JSONL loader (writer's own format only) ---

namespace {

// Locates `"key":` and parses the numeric value after it.
bool find_i64(const std::string& line, std::string_view key,
              std::int64_t* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* begin = line.data() + pos + needle.size();
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr != begin;
}

bool find_f64(const std::string& line, std::string_view key, double* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* begin = line.data() + pos + needle.size();
  const char* end = line.data() + line.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr != begin;
}

bool find_str(const std::string& line, std::string_view key,
              std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return false;
  *out = line.substr(start, close - start);
  return true;
}

FlightEventKind kind_from_name(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "gen") return FlightEventKind::kGenerate;
  if (name == "pull") return FlightEventKind::kPull;
  if (name == "tcp_enq") return FlightEventKind::kTcpEnqueue;
  if (name == "tcp_tx") return FlightEventKind::kTcpSend;
  if (name == "link_enq") return FlightEventKind::kLinkEnqueue;
  if (name == "link_deq") return FlightEventKind::kLinkDequeue;
  if (name == "link_drop") return FlightEventKind::kLinkDrop;
  if (name == "rto") return FlightEventKind::kRto;
  if (name == "sink_rx") return FlightEventKind::kSinkRx;
  if (name == "deliver") return FlightEventKind::kDeliver;
  if (name == "arrive") return FlightEventKind::kArrive;
  if (name == "path_fault") return FlightEventKind::kPathFault;
  if (name == "sched") return FlightEventKind::kSchedDecision;
  *ok = false;
  return FlightEventKind::kGenerate;
}

}  // namespace

FlightRecorder read_flight_trace(std::istream& in) {
  FlightRecorder recorder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string ev;
    if (!find_str(line, "ev", &ev)) {
      throw std::runtime_error{"flight trace line " + std::to_string(line_no) +
                               ": missing \"ev\" field"};
    }
    if (ev == "meta") {
      double mu = 0.0;
      std::int64_t epoch = 0, total = -1;
      find_f64(line, "mu_pps", &mu);
      find_i64(line, "epoch_ns", &epoch);
      find_i64(line, "total_packets", &total);
      recorder.set_meta(mu, epoch, total);
      continue;
    }
    bool known = false;
    FlightEvent e;
    e.kind = kind_from_name(ev, &known);
    if (!known) {
      throw std::runtime_error{"flight trace line " + std::to_string(line_no) +
                               ": unknown event type \"" + ev + "\""};
    }
    if (!find_i64(line, "t_ns", &e.t_ns) ||
        !find_i64(line, "pkt", &e.packet)) {
      throw std::runtime_error{"flight trace line " + std::to_string(line_no) +
                               ": missing t_ns/pkt"};
    }
    std::int64_t v = 0;
    if (find_i64(line, "path", &v)) e.path = static_cast<std::int32_t>(v);
    if (find_i64(line, "hop", &v)) e.hop = static_cast<std::int32_t>(v);
    find_i64(line, "seq", &e.seq);
    find_i64(line, "queue", &e.queue);
    if (find_i64(line, "attempt", &v)) {
      e.attempt = static_cast<std::uint32_t>(v);
    }
    std::string reason;
    if (find_str(line, "reason", &reason)) {
      e.reason = reason == "rto" ? RtxReason::kRtoRtx
                                 : (reason == "fast" ? RtxReason::kFastRtx
                                                     : RtxReason::kNone);
    }
    find_f64(line, "cwnd", &e.cwnd);
    find_f64(line, "ssthresh", &e.ssthresh);
    recorder.record(e);
  }
  return recorder;
}

FlightRecorder read_flight_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error{"cannot open flight trace: " + path};
  }
  return read_flight_trace(in);
}

}  // namespace dmp::obs
