// Knobs for attaching the observability layer to a run.  Disabled by
// default: a session with `enabled == false` creates no registry, attaches
// no counters, and schedules no probes, so the hot path is identical to an
// uninstrumented build.
#pragma once

#include <cstddef>
#include <string>

#include "obs/event_log.hpp"

namespace dmp::obs {

struct ObsConfig {
  bool enabled = false;
  // Directory for the emitted artifacts; created if missing.  Files are
  // `<prefix>_report.json`, `<prefix>_probe.csv`, `<prefix>_events.jsonl`.
  std::string output_dir = "bench_out";
  std::string prefix = "run";
  // Gauge-snapshot interval for the time-series probe (simulated seconds);
  // <= 0 disables the probe (counters, events and the report still run).
  double probe_interval_s = 1.0;
  // Growth caps on the probe CSV (0 = unlimited): once either limit is
  // reached, further samples are dropped and counted — the run report's
  // `probe_rows_dropped` scalar surfaces how much was cut.  The event log
  // is already ring-bounded by `event_ring_capacity` (overwrites are
  // reported as `events_overwritten`).
  std::size_t probe_max_rows = 0;
  std::size_t probe_max_bytes = 0;
  // Ring-buffer capacity for the event log (0 = unbounded).
  std::size_t event_ring_capacity = 65536;
  Severity min_severity = Severity::kInfo;
  // Per-packet lifecycle tracing (the flight recorder).  Orthogonal to
  // `enabled`: either toggle brings up the obs layer, but the JSONL trace
  // in `<prefix>_trace.jsonl` is written only when this one is set.
  bool flight_recorder = false;

  std::string report_path() const {
    return output_dir + "/" + prefix + "_report.json";
  }
  std::string probe_csv_path() const {
    return output_dir + "/" + prefix + "_probe.csv";
  }
  std::string events_path() const {
    return output_dir + "/" + prefix + "_events.jsonl";
  }
  std::string trace_path() const {
    return output_dir + "/" + prefix + "_trace.jsonl";
  }
};

}  // namespace dmp::obs
