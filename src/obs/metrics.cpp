#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmp::obs {

Histogram::Histogram(double lowest) : lowest_(lowest) {
  if (!(lowest > 0.0)) {
    throw std::invalid_argument{"histogram lowest bound must be positive"};
  }
}

std::size_t Histogram::bucket_index(double v) const {
  if (!(v > lowest_)) return 0;
  const double log2v = std::log2(v / lowest_);
  const auto i = static_cast<std::size_t>(log2v) + 1;
  return std::min(i, kBuckets - 1);
}

double Histogram::bucket_upper_bound(std::size_t i) const {
  return lowest_ * std::exp2(static_cast<double>(i));
}

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_index(v)];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double hi = bucket_upper_bound(i);
      const double lo = i == 0 ? lowest_ : bucket_upper_bound(i - 1);
      return std::clamp(std::sqrt(lo * hi), min_, max_);
    }
  }
  return max_;  // unreachable: counts always sum to count_
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::freeze_gauges() {
  for (auto& [name, gauge] : gauges_) gauge.freeze();
}

}  // namespace dmp::obs
