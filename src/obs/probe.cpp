#include "obs/probe.hpp"

#include <stdexcept>

namespace dmp::obs {

namespace {

std::vector<std::string> header_for(const std::vector<std::string>& names) {
  std::vector<std::string> columns;
  columns.reserve(names.size() + 1);
  columns.push_back("time_s");
  columns.insert(columns.end(), names.begin(), names.end());
  return columns;
}

}  // namespace

ProbeWriter::ProbeWriter(MetricsRegistry& registry,
                         std::vector<std::string> gauge_names,
                         const std::string& csv_path)
    : csv_(csv_path, header_for(gauge_names)) {
  gauges_.reserve(gauge_names.size());
  for (const auto& name : gauge_names) gauges_.push_back(&registry.gauge(name));
}

void ProbeWriter::sample(double time_s) {
  if ((max_rows_ != 0 && samples_ >= max_rows_) ||
      (max_bytes_ != 0 && bytes_written_ >= max_bytes_)) {
    ++dropped_rows_;
    return;
  }
  std::vector<std::string> cells;
  cells.reserve(gauges_.size() + 1);
  cells.push_back(CsvWriter::num(time_s));
  for (const Gauge* g : gauges_) cells.push_back(CsvWriter::num(g->value()));
  csv_.row(cells);
  // Cell bytes plus a separator/newline per cell approximates the row's
  // on-disk size closely enough to enforce a cap.
  for (const auto& cell : cells) bytes_written_ += cell.size() + 1;
  ++samples_;
}

Probe::Probe(Scheduler& sched, MetricsRegistry& registry,
             std::vector<std::string> gauge_names, const std::string& csv_path,
             SimTime interval)
    : sched_(sched),
      writer_(registry, std::move(gauge_names), csv_path),
      interval_(interval) {
  // A non-positive interval would re-tick at the same instant forever.
  if (interval_ <= SimTime::zero()) {
    throw std::invalid_argument{"probe interval must be positive"};
  }
}

void Probe::start(SimTime end) {
  end_ = end;
  tick();
}

void Probe::stop() { timer_.cancel(); }

void Probe::tick() {
  writer_.sample(sched_.now().to_seconds());
  const SimTime next = sched_.now() + interval_;
  if (next <= end_) {
    timer_ = sched_.schedule_at(next, [this] { tick(); },
                                EventCategory::kProbe);
  }
}

WallClockProbe::WallClockProbe(MetricsRegistry& registry,
                               std::vector<std::string> gauge_names,
                               const std::string& csv_path,
                               std::uint64_t interval_ns)
    : writer_(registry, std::move(gauge_names), csv_path),
      interval_ns_(interval_ns) {
  if (interval_ns_ == 0) {
    throw std::invalid_argument{"probe interval must be positive"};
  }
}

void WallClockProbe::poll(std::uint64_t now_ns) {
  if (!started_) {
    started_ = true;
    epoch_ns_ = now_ns;
    next_ns_ = now_ns;
  }
  if (now_ns < next_ns_) return;
  writer_.sample(static_cast<double>(now_ns - epoch_ns_) * 1e-9);
  next_ns_ = now_ns + interval_ns_;
}

}  // namespace dmp::obs
