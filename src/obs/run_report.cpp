#include "obs/run_report.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace dmp::obs {

namespace {

std::string json_number(double v) {
  // to_chars would happily render "inf"/"nan", which is not JSON — empty
  // RunningStats/Histogram extrema arrive here as ±inf sentinels.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 12);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

// Appends `"key":value` pairs of a name-sorted map as one JSON object.
template <typename Map, typename Render>
void append_object(std::string& out, const Map& map, Render render) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out += ',';
    first = false;
    out += json_string(name);
    out += ':';
    render(out, value);
  }
  out += '}';
}

}  // namespace

void RunReport::set_scalar(const std::string& key, double v) {
  meta_[key] = json_number(v);
}

void RunReport::set_scalar(const std::string& key, std::int64_t v) {
  meta_[key] = std::to_string(v);
}

void RunReport::set_text(const std::string& key, const std::string& v) {
  meta_[key] = json_string(v);
}

void RunReport::set_series(const std::string& key,
                           const std::vector<double>& v) {
  series_[key] = v;
}

std::string RunReport::to_json(const MetricsRegistry* registry) const {
  std::string out = "{\n\"meta\":";
  append_object(out, meta_,
                [](std::string& o, const std::string& v) { o += v; });
  out += ",\n\"series\":";
  append_object(out, series_, [](std::string& o, const std::vector<double>& v) {
    o += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) o += ',';
      o += json_number(v[i]);
    }
    o += ']';
  });
  out += ",\n\"counters\":";
  if (registry) {
    append_object(out, registry->counters(),
                  [](std::string& o, const Counter& c) {
                    o += std::to_string(c.value());
                  });
  } else {
    out += "{}";
  }
  out += ",\n\"gauges\":";
  if (registry) {
    append_object(out, registry->gauges(), [](std::string& o, const Gauge& g) {
      o += json_number(g.value());
    });
  } else {
    out += "{}";
  }
  out += ",\n\"histograms\":";
  if (registry) {
    append_object(out, registry->histograms(),
                  [](std::string& o, const Histogram& h) {
                    o += "{\"count\":" + std::to_string(h.count());
                    o += ",\"sum\":" + json_number(h.sum());
                    o += ",\"mean\":" + json_number(h.mean());
                    o += ",\"min\":" + json_number(h.min());
                    o += ",\"max\":" + json_number(h.max());
                    o += ",\"p50\":" + json_number(h.quantile(0.50));
                    o += ",\"p90\":" + json_number(h.quantile(0.90));
                    o += ",\"p99\":" + json_number(h.quantile(0.99));
                    o += '}';
                  });
  } else {
    out += "{}";
  }
  out += "\n}\n";
  return out;
}

bool RunReport::write(const std::string& path,
                      const MetricsRegistry* registry) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open run report output: %s\n",
                 path.c_str());
    return false;
  }
  out << to_json(registry);
  if (!out.flush()) {
    std::fprintf(stderr, "warning: failed writing report: %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace dmp::obs
