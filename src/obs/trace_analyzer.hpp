// Offline analysis of flight-recorder traces: per-packet timeline
// reconstruction and deadline-miss attribution.
//
// The paper's headline metric is the fraction of packets missing their
// playback deadline n/mu + tau (Figs. 4-5, 7, 9).  The analyzer walks a
// FlightRecorder trace, rebuilds each packet's journey (server queue ->
// TCP send buffer -> bottleneck queue -> receiver reorder buffer ->
// playback), and assigns every late packet exactly one dominant cause:
//
//   queueing        lateness dominated by drop-tail queueing delay at the
//                   bottleneck (no loss involved)
//   loss_fast_rtx   the packet itself was lost and recovered by a fast
//                   retransmit (triple-dupack path)
//   rto_stall       the packet was retransmitted after a timeout, or its
//                   flight window spans an RTO on its path (go-back-N /
//                   window-collapse stall)
//   hol_wait        head-of-line wait: the packet reached the receiver in
//                   time but sat in the reorder buffer behind an earlier
//                   retransmitted segment
//   path_imbalance  lateness dominated by waiting before first
//                   transmission (server queue + send buffer): the path
//                   pulled more of the stream than it could carry
//   never_arrived   generated but not delivered by the end of the run
//   path_fault      the packet's flight window overlaps an injected fault
//                   on its delivering path (link_down..link_up outage
//                   window or a burst_loss instant, src/fault/) — the
//                   outage, not organic congestion, explains the miss
//
// Deadline evaluation replicates StreamTrace::late_fraction_playback_order
// operation-for-operation (same SimTime integer-nanosecond arithmetic,
// same iteration over arrivals), so the analyzer's late count reconciles
// EXACTLY with the trace metric — pinned by tests/obs/.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace dmp::obs {

enum class LateCause : std::uint8_t {
  kQueueing = 0,
  kLossFastRtx = 1,
  kRtoStall = 2,
  kHolWait = 3,
  kPathImbalance = 4,
  kNeverArrived = 5,
  kPathFault = 6,
};
inline constexpr std::size_t kNumLateCauses = 7;

std::string_view late_cause_name(LateCause cause);

// One reconstructed packet journey.  Times are nanoseconds on the
// recorder's clock; -1 marks a station the packet never reached (or one
// that was not instrumented).
struct PacketTimeline {
  std::int64_t packet = -1;
  std::int32_t path = -1;  // path that delivered (or last carried) it

  std::int64_t gen_ns = -1;      // entered the server queue
  std::int64_t pull_ns = -1;     // fetched by a sender
  std::int64_t enqueue_ns = -1;  // appended to the TCP send buffer

  struct Send {
    std::int64_t t_ns = 0;
    std::int64_t seq = -1;
    std::uint32_t attempt = 0;
    RtxReason reason = RtxReason::kNone;
    double cwnd = 0.0;
    double ssthresh = 0.0;
  };
  std::vector<Send> sends;  // first transmission + every retransmission

  struct HopTraversal {
    std::int32_t hop = -1;
    std::int64_t enqueue_ns = -1;
    std::int64_t dequeue_ns = -1;  // -1: still queued or dropped
    bool dropped = false;
  };
  std::vector<HopTraversal> hops;  // one per link pass, in event order

  std::int64_t sink_rx_ns = -1;   // segment reached the receiver
  std::int64_t deliver_ns = -1;   // released in order by the sink
  std::int64_t arrive_ns = -1;    // recorded into the client trace

  std::uint32_t drops = 0;          // drop-tail discards of this packet
  std::uint32_t transmissions = 0;  // total kTcpSend events

  // Derived wait components (ns; 0 when the stations are missing).
  std::int64_t pre_tx_wait_ns() const;   // generation -> first send
  std::int64_t link_queue_wait_ns() const;  // sum of completed hop waits
  std::int64_t reorder_wait_ns() const;  // sink_rx -> in-order delivery
};

// Verdict for one arrival (mirrors one StreamTrace entry).
struct PacketVerdict {
  std::int64_t packet = -1;
  std::int64_t arrive_rel_ns = -1;    // arrival relative to the epoch
  std::int64_t deadline_rel_ns = -1;  // n/mu + tau, relative to the epoch
  bool late = false;
  LateCause cause = LateCause::kQueueing;  // meaningful only when late
};

struct AttributionReport {
  std::int64_t total_packets = 0;
  std::int64_t arrived = 0;  // arrivals with packet < total_packets
  std::int64_t late = 0;     // includes never-arrived packets
  std::array<std::int64_t, kNumLateCauses> by_cause{};
  std::vector<PacketVerdict> verdicts;  // late arrivals only, arrival order

  // Identical to StreamTrace::late_fraction_playback_order on the same
  // trace (0 when total_packets <= 0, matching its guard).
  double late_fraction() const {
    return total_packets <= 0
               ? 0.0
               : static_cast<double>(late) / static_cast<double>(total_packets);
  }
};

// Per-path summary for the trace_query CLI.
struct PathHopStats {
  std::int32_t path = -1;
  std::uint64_t packets_delivered = 0;
  std::uint64_t drops = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t rtos = 0;
  // Bottleneck-queue wait percentiles over completed hop traversals (s).
  double queue_wait_p50_s = 0.0;
  double queue_wait_p90_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double queue_wait_max_s = 0.0;
};

class TraceAnalyzer {
 public:
  // Builds timelines from an in-memory recorder.  The recorder must
  // outlive the analyzer only for this call; everything is copied out.
  explicit TraceAnalyzer(const FlightRecorder& recorder);

  double mu_pps() const { return mu_pps_; }
  std::int64_t epoch_ns() const { return epoch_ns_; }
  std::int64_t total_packets_hint() const { return total_packets_; }

  const std::map<std::int64_t, PacketTimeline>& timelines() const {
    return timelines_;
  }
  // Null when the packet never appeared in the trace.
  const PacketTimeline* timeline(std::int64_t packet) const;

  // Deadline-miss attribution at startup delay `tau_s`, over packets
  // [0, total_packets).  Pass total_packets < 0 to use the trace meta.
  AttributionReport attribute(double tau_s,
                              std::int64_t total_packets = -1) const;

  // Per-path hop-latency percentiles and loss/retransmission totals.
  std::vector<PathHopStats> path_stats() const;

  // Packets sent more than once, in packet order (retransmission chains).
  std::vector<const PacketTimeline*> retransmitted_packets() const;

  // RTO instants per path (flow), sorted; used for stall attribution.
  const std::map<std::int32_t, std::vector<std::int64_t>>& rto_times() const {
    return rto_times_;
  }

  // Injected-fault windows per path, in trace order: [start, end] ns.
  // link_down opens a window (closed by the next link_up, or running to
  // INT64_MAX when the path never recovers); burst_loss contributes a
  // point window [t, t].
  const std::map<std::int32_t,
                 std::vector<std::pair<std::int64_t, std::int64_t>>>&
  fault_windows() const {
    return fault_windows_;
  }

  // Dominant-cause decision for one late arrival; exposed for tests.
  LateCause classify(const PacketTimeline& tl) const;

 private:
  double mu_pps_ = 0.0;
  std::int64_t epoch_ns_ = 0;
  std::int64_t total_packets_ = -1;
  std::map<std::int64_t, PacketTimeline> timelines_;
  // (packet, absolute arrival ns) in arrival order — mirrors the
  // StreamTrace entry vector so attribution iterates identically.
  std::vector<std::pair<std::int64_t, std::int64_t>> arrivals_;
  std::map<std::int32_t, std::vector<std::int64_t>> rto_times_;
  std::map<std::int32_t, std::vector<std::pair<std::int64_t, std::int64_t>>>
      fault_windows_;
};

// Reads a trace serialized by FlightRecorder::to_jsonl back into a
// recorder (meta + events).  Throws std::runtime_error on malformed
// input.  Only the writer's own format is supported — this is a trace
// loader, not a general JSON parser.
FlightRecorder read_flight_trace(std::istream& in);
FlightRecorder read_flight_trace_file(const std::string& path);

}  // namespace dmp::obs
