// Metrics registry: named counters, gauges and log-bucketed histograms.
//
// Instrumented components hold plain pointers into a registry (null when no
// observer is attached), so the un-instrumented hot path costs one branch
// and the instrumented path one increment — there is no locking, string
// hashing or allocation anywhere near packet processing.  Gauges can either
// store a value or pull one on demand through a sampler callback; sampler
// gauges are what `Probe` snapshots into time series.  The registry owns
// every metric and guarantees stable addresses for the lifetime of the
// registry (node-based map storage).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace dmp::obs {

// Monotonic event counter (retransmits, drops, pulls, ...).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Point-in-time value (cwnd, queue depth, RTT estimate, ...).  Either set
// explicitly or backed by a sampler that reads the instrumented object.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    sampler_ = nullptr;
  }
  void set_sampler(std::function<double()> fn) { sampler_ = std::move(fn); }

  double value() const { return sampler_ ? sampler_() : value_; }
  bool has_sampler() const { return sampler_ != nullptr; }
  // Replaces a sampler with its current value; used before a registry
  // outlives the objects its samplers point into.
  void freeze() {
    if (sampler_) {
      value_ = sampler_();
      sampler_ = nullptr;
    }
  }

 private:
  double value_ = 0.0;
  std::function<double()> sampler_;
};

// Log2-bucketed histogram for positive reals (per-packet delay, ACK
// inter-arrival).  Bucket i >= 1 covers [lowest*2^(i-1), lowest*2^i);
// bucket 0 collects everything at or below `lowest`.  Exact count/sum/
// min/max are tracked alongside, so means are exact and only quantiles
// carry bucket-resolution error (a factor of sqrt(2) at worst).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  explicit Histogram(double lowest = 1e-6);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  // Approximate quantile (geometric midpoint of the target bucket, clamped
  // to the observed range); 0 when empty.
  double quantile(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }
  double bucket_upper_bound(std::size_t i) const;

 private:
  std::size_t bucket_index(double v) const;

  double lowest_;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Name -> metric map.  Lookup is get-or-create; iteration is sorted by
// name, which keeps every emitted report deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) {
    return histograms_.try_emplace(name).first->second;
  }

  // Lookup without creating; null when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Evaluates and detaches every gauge sampler; call before the registry
  // outlives the instrumented objects.
  void freeze_gauges();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dmp::obs
