#include "obs/event_log.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace dmp::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 12);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
  }
  return "?";
}

EventField EventField::num(std::string key, double v) {
  return EventField{std::move(key), format_double(v), true};
}

EventField EventField::num(std::string key, std::int64_t v) {
  return EventField{std::move(key), std::to_string(v), true};
}

EventField EventField::num(std::string key, std::uint64_t v) {
  return EventField{std::move(key), std::to_string(v), true};
}

EventField EventField::text(std::string key, std::string v) {
  return EventField{std::move(key), std::move(v), false};
}

EventLog::EventLog(std::size_t ring_capacity, Severity min_severity)
    : ring_capacity_(ring_capacity), min_severity_(min_severity) {}

void EventLog::record(double time_s, Severity severity, std::string_view type,
                      std::initializer_list<EventField> fields) {
  if (!enabled(severity)) return;
  ++total_recorded_;
  if (ring_capacity_ != 0 && events_.size() >= ring_capacity_) {
    events_.pop_front();
    ++overwritten_;
  }
  Event e;
  e.time_s = time_s;
  e.severity = severity;
  e.type = std::string(type);
  e.fields.assign(fields.begin(), fields.end());
  events_.push_back(std::move(e));
}

void EventLog::to_jsonl(std::ostream& out) const {
  std::string line;
  for (const Event& e : events_) {
    line.clear();
    line += "{\"t\":";
    line += format_double(e.time_s);
    line += ",\"sev\":\"";
    line += severity_name(e.severity);
    line += "\",\"type\":\"";
    append_json_escaped(line, e.type);
    line += '"';
    for (const EventField& f : e.fields) {
      line += ",\"";
      append_json_escaped(line, f.key);
      line += "\":";
      if (f.is_number) {
        line += f.value;
      } else {
        line += '"';
        append_json_escaped(line, f.value);
        line += '"';
      }
    }
    line += "}\n";
    out << line;
  }
}

bool EventLog::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open event log output: %s\n",
                 path.c_str());
    return false;
  }
  to_jsonl(out);
  if (!out.flush()) {
    std::fprintf(stderr, "warning: failed writing event log: %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace dmp::obs
