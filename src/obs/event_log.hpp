// Structured event log for discrete observations: a packet drop at a link,
// an RTO firing on a connection, a server-queue pull, a cwnd phase change.
//
// Events carry a timestamp (seconds — simulated or wall-clock, the caller
// decides), a severity, a type tag, and a small set of key/value fields.
// Serialization is JSON Lines, one event per line, so long runs stream to
// disk and standard tooling (jq, pandas) consumes them directly.  A ring-
// buffer mode bounds memory for long runs: when capacity is reached the
// oldest events are overwritten and counted, never silently lost.
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dmp::obs {

enum class Severity { kDebug = 0, kInfo = 1, kWarn = 2 };

std::string_view severity_name(Severity s);

// One key/value field; numbers are emitted unquoted, text is JSON-escaped.
struct EventField {
  std::string key;
  std::string value;
  bool is_number = false;

  static EventField num(std::string key, double v);
  static EventField num(std::string key, std::int64_t v);
  static EventField num(std::string key, std::uint64_t v);
  // Unambiguous entry point for smaller integer types (FlowId, path
  // indices): call sites pass them through this widening overload.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, std::int64_t> &&
             !std::is_same_v<T, std::uint64_t>)
  static EventField num(std::string key, T v) {
    if constexpr (std::is_signed_v<T>) {
      return num(std::move(key), static_cast<std::int64_t>(v));
    } else {
      return num(std::move(key), static_cast<std::uint64_t>(v));
    }
  }
  static EventField text(std::string key, std::string v);
};

struct Event {
  double time_s = 0.0;
  Severity severity = Severity::kInfo;
  std::string type;
  std::vector<EventField> fields;
};

class EventLog {
 public:
  // `ring_capacity` bounds retained events (0 = unbounded).
  explicit EventLog(std::size_t ring_capacity = 0,
                    Severity min_severity = Severity::kDebug);

  void set_min_severity(Severity s) { min_severity_ = s; }
  Severity min_severity() const { return min_severity_; }

  // Cheap pre-check so callers can skip field formatting entirely.
  bool enabled(Severity s) const { return s >= min_severity_; }

  void record(double time_s, Severity severity, std::string_view type,
              std::initializer_list<EventField> fields);

  std::size_t size() const { return events_.size(); }
  // Events accepted past the severity filter (including overwritten ones).
  std::uint64_t total_recorded() const { return total_recorded_; }
  // Events evicted by the ring buffer.
  std::uint64_t overwritten() const { return overwritten_; }
  std::size_t ring_capacity() const { return ring_capacity_; }
  const std::deque<Event>& events() const { return events_; }

  void to_jsonl(std::ostream& out) const;
  // Writes all retained events as JSON Lines.  I/O failure is reported on
  // stderr and returns false (never throws) — losing a log artifact must
  // not abort the run that produced it.
  bool write_jsonl(const std::string& path) const;

 private:
  std::size_t ring_capacity_;
  Severity min_severity_;
  std::deque<Event> events_;
  std::uint64_t total_recorded_ = 0;
  std::uint64_t overwritten_ = 0;
};

}  // namespace dmp::obs
