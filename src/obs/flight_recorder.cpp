#include "obs/flight_recorder.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>

namespace dmp::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 12);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

}  // namespace

std::string_view flight_event_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kGenerate: return "gen";
    case FlightEventKind::kPull: return "pull";
    case FlightEventKind::kTcpEnqueue: return "tcp_enq";
    case FlightEventKind::kTcpSend: return "tcp_tx";
    case FlightEventKind::kLinkEnqueue: return "link_enq";
    case FlightEventKind::kLinkDequeue: return "link_deq";
    case FlightEventKind::kLinkDrop: return "link_drop";
    case FlightEventKind::kRto: return "rto";
    case FlightEventKind::kSinkRx: return "sink_rx";
    case FlightEventKind::kDeliver: return "deliver";
    case FlightEventKind::kArrive: return "arrive";
    case FlightEventKind::kPathFault: return "path_fault";
    case FlightEventKind::kSchedDecision: return "sched";
  }
  return "?";
}

std::string_view rtx_reason_name(RtxReason reason) {
  switch (reason) {
    case RtxReason::kNone: return "none";
    case RtxReason::kFastRtx: return "fast";
    case RtxReason::kRtoRtx: return "rto";
  }
  return "?";
}

std::string_view drop_cause_name(DropCause cause) {
  switch (cause) {
    case DropCause::kNone: return "none";
    case DropCause::kOverlimit: return "overlimit";
    case DropCause::kEarly: return "early";
  }
  return "?";
}

void FlightRecorder::to_jsonl(std::ostream& out) const {
  std::string line;
  line += "{\"ev\":\"meta\",\"version\":1,\"mu_pps\":";
  line += format_double(mu_pps_);
  line += ",\"epoch_ns\":";
  line += std::to_string(epoch_ns_);
  line += ",\"total_packets\":";
  line += std::to_string(total_packets_);
  line += ",\"events\":";
  line += std::to_string(events_.size());
  line += "}\n";
  out << line;

  for (const FlightEvent& e : events_) {
    line.clear();
    line += "{\"t_ns\":";
    line += std::to_string(e.t_ns);
    line += ",\"ev\":\"";
    line += flight_event_name(e.kind);
    line += "\",\"pkt\":";
    line += std::to_string(e.packet);
    if (e.path >= 0) {
      line += ",\"path\":";
      line += std::to_string(e.path);
    }
    if (e.hop >= 0) {
      line += ",\"hop\":";
      line += std::to_string(e.hop);
    }
    if (e.seq >= 0) {
      line += ",\"seq\":";
      line += std::to_string(e.seq);
    }
    if (e.queue >= 0) {
      line += ",\"queue\":";
      line += std::to_string(e.queue);
    }
    if (e.attempt > 0) {
      line += ",\"attempt\":";
      line += std::to_string(e.attempt);
    }
    if (e.reason != RtxReason::kNone) {
      line += ",\"reason\":\"";
      line += rtx_reason_name(e.reason);
      line += '"';
    }
    if (e.drop != DropCause::kNone) {
      line += ",\"drop\":\"";
      line += drop_cause_name(e.drop);
      line += '"';
    }
    if (e.kind == FlightEventKind::kTcpSend ||
        e.kind == FlightEventKind::kRto) {
      line += ",\"cwnd\":";
      line += format_double(e.cwnd);
      line += ",\"ssthresh\":";
      line += format_double(e.ssthresh);
    }
    line += "}\n";
    out << line;
  }
}

bool FlightRecorder::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "flight recorder: cannot open %s\n", path.c_str());
    return false;
  }
  to_jsonl(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "flight recorder: failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace dmp::obs
