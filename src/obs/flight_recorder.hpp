// Per-packet flight recorder: every stream packet's lifecycle as typed
// span events, from server pull to playback verdict.
//
// PR 1's metrics layer aggregates (how many packets were late); the flight
// recorder answers *why a specific packet* was late — which path carried
// it, how long it sat in the server queue and the TCP send buffer, whether
// it was dropped at a bottleneck, recovered by fast retransmit or an RTO,
// and how long it waited in the receiver's reorder buffer behind an
// earlier retransmission.  This is the ns-2 trace-file workflow (and the
// per-request tracing production streaming systems rely on) rebuilt on the
// repo's instrumentation discipline:
//
//   * components hold a null recorder pointer by default — the
//     uninstrumented hot path costs one predictable branch per event;
//   * recording is passive (an append to a flat vector): an instrumented
//     run is packet-for-packet identical to an uninstrumented one, pinned
//     by tests/obs/flight_recorder_test.cpp;
//   * timestamps are integer nanoseconds (simulated or wall-clock
//     monotonic, the caller decides), so serialized traces reconstruct
//     timelines exactly — no double rounding between the recorder and the
//     analyzer's deadline arithmetic.
//
// Serialization is deterministic JSON Lines keyed by the stream packet
// number (`pkt`, the app_tag carried end-to-end); `trace_analyzer.hpp`
// reconstructs timelines and attributes deadline misses, and the
// `trace_query` CLI in tools/ filters and summarizes traces offline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dmp::obs {

// Lifecycle stations, in the order a packet normally visits them.
enum class FlightEventKind : std::uint8_t {
  kGenerate,     // server: CBR source placed the packet in the server queue
  kPull,         // server: sender on `path` fetched it from the queue
  kTcpEnqueue,   // tcp: appended to the sender's bounded send buffer
  kTcpSend,      // tcp: (re)transmission with cwnd/ssthresh snapshot
  kLinkEnqueue,  // net: entered a link's drop-tail queue (hop id attached)
  kLinkDequeue,  // net: left the queue / began transmission at the hop
  kLinkDrop,     // net: drop-tail discard at the hop
  kRto,          // tcp: retransmission timeout fired on this packet's flow
  kSinkRx,       // tcp: segment reached the receiver (possibly out of order)
  kDeliver,      // tcp: released in order by the cumulative-ACK sink
  kArrive,       // stream: client recorded the packet into its trace
  kPathFault,    // fault: injected path event (path-level, packet = -1;
                 // seq carries the fault::FaultKind code, queue the burst
                 // count for burst_loss)
  kSchedDecision,  // server: a PathScheduler redundancy decision — a
                   // duplicate copy (packet >= 0) or an XOR-parity packet
                   // (encoded negative tag) dispatched on `path`.  Plain
                   // pulls keep their kPull event; `pull` runs emit none
                   // of these, keeping compat traces byte-identical.
};

std::string_view flight_event_name(FlightEventKind kind);

// Why a segment was retransmitted (kTcpSend with attempt > 1).
enum class RtxReason : std::uint8_t { kNone = 0, kFastRtx = 1, kRtoRtx = 2 };

std::string_view rtx_reason_name(RtxReason reason);

// Which queue-discipline decision discarded the packet (kLinkDrop events
// on AQM links): "overlimit" = buffer-limit discard, "early" = AQM
// controller decision with buffer room to spare.  kNone — the default,
// and the only value drop-tail links emit — keeps the field out of the
// serialized form entirely, so pre-AQM golden traces stay byte-identical
// (docs/OBSERVABILITY.md, drop-reason taxonomy).
enum class DropCause : std::uint8_t { kNone = 0, kOverlimit = 1, kEarly = 2 };

std::string_view drop_cause_name(DropCause cause);

// One span event.  Fields are kind-specific; unused ones keep their
// sentinel defaults and are omitted from the serialized form.
struct FlightEvent {
  std::int64_t t_ns = 0;  // simulated or monotonic wall-clock nanoseconds
  FlightEventKind kind = FlightEventKind::kGenerate;
  std::int64_t packet = -1;   // stream packet number (app_tag); always set
  std::int32_t path = -1;     // video flow / path index; -1 when unknown
  std::int32_t hop = -1;      // link id for kLink* events
  std::int64_t seq = -1;      // TCP sequence (packet units) for tcp events
  std::int64_t queue = -1;    // queue depth at gen/pull/link events
  std::uint32_t attempt = 0;  // kTcpSend: times this segment has been sent
  RtxReason reason = RtxReason::kNone;  // kTcpSend with attempt > 1
  DropCause drop = DropCause::kNone;    // kLinkDrop on AQM links
  double cwnd = 0.0;          // kTcpSend / kRto congestion snapshot
  double ssthresh = 0.0;
};

// Append-only event store.  One recorder serves a whole run; components
// receive a raw pointer via their `set_flight_recorder()` hooks and call
// `record()` behind a null check.
class FlightRecorder {
 public:
  FlightRecorder() = default;

  // Stream parameters the analyzer needs to evaluate playback deadlines:
  // the generation epoch on this recorder's clock, the CBR rate, and the
  // number of packets generated.  May be set (or corrected — e.g. the inet
  // client only learns the epoch after the run) any time before writing.
  void set_meta(double mu_pps, std::int64_t epoch_ns,
                std::int64_t total_packets = -1) {
    mu_pps_ = mu_pps;
    epoch_ns_ = epoch_ns;
    total_packets_ = total_packets;
  }
  void set_total_packets(std::int64_t n) { total_packets_ = n; }

  double mu_pps() const { return mu_pps_; }
  std::int64_t epoch_ns() const { return epoch_ns_; }
  std::int64_t total_packets() const { return total_packets_; }

  void record(const FlightEvent& e) { events_.push_back(e); }

  std::size_t size() const { return events_.size(); }
  const std::vector<FlightEvent>& events() const { return events_; }

  // One meta line, then one JSON object per event in record order.  The
  // output is deterministic: identical runs serialize byte-for-byte
  // identically (pinned by the golden-trace test).
  void to_jsonl(std::ostream& out) const;
  // Writes to_jsonl() to `path`; returns false (with a stderr warning)
  // on open/write failure instead of throwing — tracing must never take
  // the run down with it.
  bool write_jsonl(const std::string& path) const;

 private:
  double mu_pps_ = 0.0;
  std::int64_t epoch_ns_ = 0;
  std::int64_t total_packets_ = -1;
  std::vector<FlightEvent> events_;
};

}  // namespace dmp::obs
