#include "obs/telemetry/time_series.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/csv.hpp"

namespace dmp::obs {

TimeSeriesChannel::TimeSeriesChannel(std::string name, std::int64_t window_ns)
    : name_(std::move(name)), window_ns_(window_ns) {
  if (window_ns_ <= 0) {
    throw std::invalid_argument{"time-series window must be positive"};
  }
}

void TimeSeriesChannel::roll(std::int64_t next_index) {
  done_.push_back(Window{open_index_, open_count_, open_sum_, open_min_,
                         open_max_, open_last_});
  total_samples_ += open_count_;
  open_count_ = 0;
  open_sum_ = 0.0;
  open_index_ = next_index;
}

const std::vector<Window>& TimeSeriesChannel::finish() {
  if (open_count_ > 0) roll(open_index_ + 1);
  return done_;
}

TimeSeries::TimeSeries(double window_s)
    : window_ns_(SimTime::seconds(window_s).ns()) {
  if (window_ns_ <= 0) {
    throw std::invalid_argument{"time-series window must be positive"};
  }
}

TimeSeriesChannel* TimeSeries::channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_.emplace(name, TimeSeriesChannel{name, window_ns_}).first;
  }
  return &it->second;
}

std::vector<const TimeSeriesChannel*> TimeSeries::channels() const {
  std::vector<const TimeSeriesChannel*> out;
  out.reserve(channels_.size());
  for (const auto& [name, ch] : channels_) out.push_back(&ch);
  return out;
}

void TimeSeries::finish_all() {
  for (auto& [name, ch] : channels_) ch.finish();
}

bool TimeSeries::write_csv(const std::string& path) {
  finish_all();
  CsvWriter csv{path, {"window_start_s", "channel", "count", "sum", "mean",
                       "min", "max", "last"}};
  const double width_s = window_s();
  for (auto& [name, ch] : channels_) {
    for (const Window& w : ch.finish()) {
      csv.row({CsvWriter::num(static_cast<double>(w.index) * width_s), name,
               CsvWriter::num(static_cast<std::int64_t>(w.count)),
               CsvWriter::num(w.sum), CsvWriter::num(w.mean()),
               CsvWriter::num(w.min), CsvWriter::num(w.max),
               CsvWriter::num(w.last)});
    }
  }
  return csv.ok();
}

bool TimeSeries::write_jsonl(const std::string& path) {
  finish_all();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = true;
  const double width_s = window_s();
  for (auto& [name, ch] : channels_) {
    for (const Window& w : ch.finish()) {
      const std::string line =
          "{\"t\":" + CsvWriter::num(static_cast<double>(w.index) * width_s) +
          ",\"channel\":\"" + name +
          "\",\"count\":" + std::to_string(w.count) +
          ",\"sum\":" + CsvWriter::num(w.sum) +
          ",\"mean\":" + CsvWriter::num(w.mean()) +
          ",\"min\":" + CsvWriter::num(w.min) +
          ",\"max\":" + CsvWriter::num(w.max) +
          ",\"last\":" + CsvWriter::num(w.last) + "}\n";
      if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
  }
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

}  // namespace dmp::obs
