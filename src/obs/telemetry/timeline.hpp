// Chrome trace-event export (Perfetto-loadable) of a run's story.
//
// Converts a flight-recorder trace (via TraceAnalyzer) — and optionally a
// windowed-telemetry CSV — into the Trace Event JSON format that
// chrome://tracing and ui.perfetto.dev load directly:
//
//   one async track per path   per-packet spans from generation to arrival
//   one track per link hop     "X" complete events for each queue->wire
//                              traversal, instant events for drops
//   instant events             RTO firings and injected-fault edges
//   counter tracks             one per telemetry channel (windowed means)
//
// Timestamps are microseconds relative to the generation epoch, so the
// viewer's clock reads as stream time.  Output is deterministic: tracks
// and events are emitted in sorted (packet, hop, channel) order.
#pragma once

#include <string>

#include "obs/trace_analyzer.hpp"

namespace dmp::obs {

struct TimelineOptions {
  // Path to a `*_telemetry.csv` written by TimeSeries::write_csv; each
  // channel becomes a counter track (empty = no counter tracks).
  std::string telemetry_csv;
  // Cap on emitted per-packet spans (<0 = no cap).  Long runs trace tens
  // of thousands of packets; the viewer rarely needs more than the first
  // few thousand spans plus the full instant/counter story.
  std::int64_t max_packets = -1;
};

// Builds the complete JSON document ({"traceEvents":[...]}).
std::string chrome_trace_json(const TraceAnalyzer& analyzer,
                              const TimelineOptions& options = {});

// Writes it to `path`; returns false on I/O failure.
bool write_chrome_trace(const TraceAnalyzer& analyzer, const std::string& path,
                        const TimelineOptions& options = {});

}  // namespace dmp::obs
