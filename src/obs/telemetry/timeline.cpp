#include "obs/telemetry/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dmp::obs {

namespace {

// Track layout: pid 1 is the whole run; paths get low tids, link hops a
// disjoint high range so the two families never collide.
constexpr int kPid = 1;
constexpr int kPathTidBase = 1;
constexpr int kLinkTidBase = 100;

std::string num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", v);
  return buffer;
}

class EventList {
 public:
  explicit EventList(std::int64_t epoch_ns) : epoch_ns_(epoch_ns) {}

  double us(std::int64_t t_ns) const {
    return static_cast<double>(t_ns - epoch_ns_) * 1e-3;
  }

  void raw(std::string event) { events_.push_back(std::move(event)); }

  void thread_name(int tid, const std::string& name) {
    raw("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
        ",\"tid\":" + std::to_string(tid) +
        ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + name + "\"}}");
  }

  void async_begin(int tid, const std::string& name, std::int64_t id,
                   std::int64_t t_ns) {
    raw("{\"ph\":\"b\",\"cat\":\"packet\",\"id\":" + std::to_string(id) +
        ",\"pid\":" + std::to_string(kPid) +
        ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + num(us(t_ns)) +
        ",\"name\":\"" + name + "\"}");
  }

  void async_end(int tid, const std::string& name, std::int64_t id,
                 std::int64_t t_ns) {
    raw("{\"ph\":\"e\",\"cat\":\"packet\",\"id\":" + std::to_string(id) +
        ",\"pid\":" + std::to_string(kPid) +
        ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + num(us(t_ns)) +
        ",\"name\":\"" + name + "\"}");
  }

  void complete(int tid, const std::string& name, std::int64_t t0_ns,
                std::int64_t t1_ns) {
    raw("{\"ph\":\"X\",\"pid\":" + std::to_string(kPid) +
        ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + num(us(t0_ns)) +
        ",\"dur\":" + num(static_cast<double>(t1_ns - t0_ns) * 1e-3) +
        ",\"name\":\"" + name + "\"}");
  }

  void instant(int tid, const std::string& name, std::int64_t t_ns) {
    raw("{\"ph\":\"i\",\"s\":\"t\",\"pid\":" + std::to_string(kPid) +
        ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + num(us(t_ns)) +
        ",\"name\":\"" + name + "\"}");
  }

  void counter(const std::string& name, double t_s, double value) {
    raw("{\"ph\":\"C\",\"pid\":" + std::to_string(kPid) +
        ",\"ts\":" + num(t_s * 1e6) + ",\"name\":\"" + name +
        "\",\"args\":{\"value\":" + num(value) + "}}");
  }

  std::string finish() const {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (i != 0) out += ',';
      out += events_[i];
    }
    out += "]}";
    return out;
  }

 private:
  std::int64_t epoch_ns_;
  std::vector<std::string> events_;
};

// Minimal reader for the TimeSeries CSV (window_start_s,channel,count,sum,
// mean,min,max,last).  Returns channel -> [(t_s, mean)], channels sorted.
std::map<std::string, std::vector<std::pair<double, double>>> read_telemetry(
    const std::string& path) {
  std::map<std::string, std::vector<std::pair<double, double>>> out;
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open telemetry csv: " + path};
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    std::vector<std::string> cells;
    std::stringstream ss{line};
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (cells.size() < 5) continue;
    out[cells[1]].emplace_back(std::atof(cells[0].c_str()),
                               std::atof(cells[4].c_str()));
  }
  return out;
}

}  // namespace

std::string chrome_trace_json(const TraceAnalyzer& analyzer,
                              const TimelineOptions& options) {
  EventList ev{analyzer.epoch_ns()};

  // Discover the path and hop universe first so track names come before
  // their events (pure cosmetics, but keeps viewers tidy).
  std::set<int> paths;
  std::set<int> hops;
  for (const auto& [packet, tl] : analyzer.timelines()) {
    if (tl.path >= 0) paths.insert(tl.path);
    for (const auto& hop : tl.hops) {
      if (hop.hop >= 0) hops.insert(hop.hop);
    }
  }
  for (const auto& [path, times] : analyzer.rto_times()) paths.insert(path);
  for (const auto& [path, windows] : analyzer.fault_windows()) {
    paths.insert(path);
  }
  for (int p : paths) {
    ev.thread_name(kPathTidBase + p, "path " + std::to_string(p));
  }
  for (int h : hops) {
    ev.thread_name(kLinkTidBase + h, "link hop " + std::to_string(h));
  }

  // Per-packet spans on the delivering path's track, plus link-hop spans.
  std::int64_t spans = 0;
  for (const auto& [packet, tl] : analyzer.timelines()) {
    const bool span_ok =
        options.max_packets < 0 || spans < options.max_packets;
    const int path_tid = kPathTidBase + (tl.path >= 0 ? tl.path : 0);
    const std::string pname = "pkt " + std::to_string(packet);
    if (span_ok && tl.gen_ns >= 0) {
      const std::int64_t end_ns =
          tl.arrive_ns >= 0
              ? tl.arrive_ns
              : std::max({tl.gen_ns, tl.deliver_ns, tl.sink_rx_ns});
      ev.async_begin(path_tid, pname, packet, tl.gen_ns);
      ev.async_end(path_tid, pname, packet, end_ns);
      ++spans;
    }
    for (const auto& hop : tl.hops) {
      const int tid = kLinkTidBase + (hop.hop >= 0 ? hop.hop : 0);
      if (hop.dropped) {
        ev.instant(tid, "drop " + pname, hop.enqueue_ns);
      } else if (span_ok && hop.dequeue_ns >= 0) {
        ev.complete(tid, pname, hop.enqueue_ns, hop.dequeue_ns);
      }
    }
  }

  // RTO firings and injected-fault edges as path-track instants.
  for (const auto& [path, times] : analyzer.rto_times()) {
    for (std::int64_t t : times) {
      ev.instant(kPathTidBase + path, "RTO", t);
    }
  }
  for (const auto& [path, windows] : analyzer.fault_windows()) {
    for (const auto& [start, end] : windows) {
      ev.instant(kPathTidBase + path, "fault_start", start);
      if (end != std::numeric_limits<std::int64_t>::max() && end > start) {
        ev.instant(kPathTidBase + path, "fault_end", end);
      }
    }
  }

  // Telemetry channels as counter tracks (windowed means, stream time).
  if (!options.telemetry_csv.empty()) {
    for (const auto& [channel, rows] : read_telemetry(options.telemetry_csv)) {
      for (const auto& [t_s, mean] : rows) ev.counter(channel, t_s, mean);
    }
  }

  return ev.finish();
}

bool write_chrome_trace(const TraceAnalyzer& analyzer, const std::string& path,
                        const TimelineOptions& options) {
  const std::string json = chrome_trace_json(analyzer, options);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return !(std::fclose(f) != 0 || !ok);
}

}  // namespace dmp::obs
