// Windowed (sim-time-bucketed) time series.
//
// Each named channel folds point samples into fixed-width windows and keeps
// only the completed windows' summaries {count, sum, min, max, last} — a
// run's full time-resolved story in O(duration / window) memory instead of
// O(events).  Recording is the hot-path operation: instrumented components
// hold a raw `TimeSeriesChannel*` (null when telemetry is off — the same
// null-check idiom as `obs::Counter*`) and call `add(t, v)`, which is an
// integer divide plus a handful of compares in the common same-window case.
//
// Flushing is deterministic: channels are kept in a name-sorted map with
// stable node addresses, windows are emitted in time order, and empty
// windows are simply absent — so the CSV never contains the ±inf extrema
// sentinels of an untouched accumulator.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace dmp::obs {

// One completed window of one channel.
struct Window {
  std::int64_t index = 0;  // window start = index * window width
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;  // final sample in the window (gauge semantics)

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

class TimeSeriesChannel {
 public:
  TimeSeriesChannel(std::string name, std::int64_t window_ns);

  // Records `v` at absolute sim time `t`.  Samples must arrive in
  // non-decreasing time order (the DES guarantees this); a sample for an
  // earlier window than the open one is folded into the open window rather
  // than rewriting history.
  void add(SimTime t, double v) {
    const std::int64_t w = t.ns() / window_ns_;
    if (w != open_index_ && open_count_ > 0) roll(w);
    open_index_ = w > open_index_ ? w : open_index_;
    if (open_count_ == 0) {
      open_min_ = open_max_ = v;
      open_sum_ = v;
    } else {
      open_sum_ += v;
      if (v < open_min_) open_min_ = v;
      if (v > open_max_) open_max_ = v;
    }
    open_last_ = v;
    ++open_count_;
  }

  // Convenience for event-count channels (drops, deliveries): each call
  // adds one sample of value `v` (default 1), so `sum` is the event count
  // per window and `count` the number of recording calls.
  void bump(SimTime t, double v = 1.0) { add(t, v); }

  // Closes the open window (if any) and returns all completed windows.
  const std::vector<Window>& finish();
  const std::string& name() const { return name_; }
  std::int64_t window_ns() const { return window_ns_; }
  std::uint64_t total_samples() const { return total_samples_; }

 private:
  void roll(std::int64_t next_index);

  std::string name_;
  std::int64_t window_ns_;
  std::vector<Window> done_;
  std::int64_t open_index_ = 0;
  std::uint64_t open_count_ = 0;
  double open_sum_ = 0.0;
  double open_min_ = 0.0;
  double open_max_ = 0.0;
  double open_last_ = 0.0;
  std::uint64_t total_samples_ = 0;
};

// Registry of channels for one run.  Channel handles are stable for the
// registry's lifetime (node-based map), so components can cache the
// pointer at attach time and never look it up again.
class TimeSeries {
 public:
  explicit TimeSeries(double window_s);

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  // Get-or-create; the returned pointer stays valid until destruction.
  TimeSeriesChannel* channel(const std::string& name);

  double window_s() const { return static_cast<double>(window_ns_) * 1e-9; }

  // Closes every open window and writes the long-format CSV:
  //   window_start_s,channel,count,sum,mean,min,max,last
  // one row per (window, channel) with samples, channels in name order.
  // Returns false if any write failed (disk full is reported, not thrown).
  bool write_csv(const std::string& path);

  // Same rows as JSONL (one object per row), for tools that prefer it.
  bool write_jsonl(const std::string& path);

  // Name-sorted iteration for reports and tests.
  std::vector<const TimeSeriesChannel*> channels() const;
  // finish()es every channel; called by the writers, callable directly.
  void finish_all();

 private:
  std::int64_t window_ns_;
  std::map<std::string, TimeSeriesChannel> channels_;
};

}  // namespace dmp::obs
