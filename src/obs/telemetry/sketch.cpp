#include "obs/telemetry/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace dmp::obs {

namespace {

// Canonical number rendering, identical to the report emitters' "%.17g"
// (shortest round-trip-safe form was considered; %.17g keeps the sketch
// files byte-compatible with BENCH_*.json numbers).
std::string num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

// --- minimal scanning parser (same idiom as obs/trace_analyzer) ---------

// Finds `"key":` at top level of a single-line JSON object and returns the
// offset just past the colon, or npos.
std::size_t find_key(std::string_view s, std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":";
  const auto at = s.find(pat);
  return at == std::string_view::npos ? std::string_view::npos
                                      : at + pat.size();
}

double parse_number_at(std::string_view s, std::size_t at) {
  return std::strtod(std::string(s.substr(at, 64)).c_str(), nullptr);
}

// Parses a JSON array of numbers starting at `at` (which must point at
// '['); returns the values and leaves malformed input to the caller.
std::vector<double> parse_number_array(std::string_view s, std::size_t at) {
  std::vector<double> out;
  if (at >= s.size() || s[at] != '[') {
    throw std::runtime_error{"sketch json: expected array"};
  }
  std::size_t i = at + 1;
  while (i < s.size() && s[i] != ']') {
    char* end = nullptr;
    const std::string chunk{s.substr(i, 64)};
    const double v = std::strtod(chunk.c_str(), &end);
    if (end == chunk.c_str()) {
      throw std::runtime_error{"sketch json: bad array element"};
    }
    out.push_back(v);
    i += static_cast<std::size_t>(end - chunk.c_str());
    if (i < s.size() && s[i] == ',') ++i;
  }
  if (i >= s.size()) throw std::runtime_error{"sketch json: unterminated array"};
  return out;
}

// Parses "[[idx,count],...]" bucket arrays.
std::map<std::int32_t, std::uint64_t> parse_bucket_array(std::string_view s,
                                                         std::size_t at) {
  std::map<std::int32_t, std::uint64_t> out;
  if (at >= s.size() || s[at] != '[') {
    throw std::runtime_error{"sketch json: expected bucket array"};
  }
  std::size_t i = at + 1;
  while (i < s.size() && s[i] != ']') {
    if (s[i] != '[') throw std::runtime_error{"sketch json: bad bucket pair"};
    const auto pair = parse_number_array(s, i);
    if (pair.size() != 2) {
      throw std::runtime_error{"sketch json: bucket pair arity"};
    }
    out[static_cast<std::int32_t>(pair[0])] =
        static_cast<std::uint64_t>(pair[1]);
    i = s.find(']', i);
    if (i == std::string_view::npos) {
      throw std::runtime_error{"sketch json: unterminated bucket pair"};
    }
    ++i;
    if (i < s.size() && s[i] == ',') ++i;
  }
  if (i >= s.size()) {
    throw std::runtime_error{"sketch json: unterminated bucket array"};
  }
  return out;
}

}  // namespace

QuantileSketch::QuantileSketch(double alpha, std::size_t exact_threshold)
    : alpha_(alpha),
      gamma_((1.0 + alpha) / (1.0 - alpha)),
      inv_log_gamma_(1.0 / std::log((1.0 + alpha) / (1.0 - alpha))),
      exact_threshold_(exact_threshold),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument{"sketch alpha must be in (0, 1)"};
  }
}

void QuantileSketch::add(double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument{"sketch add: non-finite value"};
  }
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  if (exact_mode_) {
    if (exact_.size() < exact_threshold_) {
      exact_.push_back(v);
      return;
    }
    spill();
  }
  insert_bucketed(v);
}

void QuantileSketch::insert_bucketed(double v) {
  const double mag = std::fabs(v);
  if (mag <= kZeroEps) {
    ++zero_;
    return;
  }
  const auto idx =
      static_cast<std::int32_t>(std::ceil(std::log(mag) * inv_log_gamma_));
  (v > 0.0 ? pos_ : neg_)[idx] += 1;
}

void QuantileSketch::spill() {
  exact_mode_ = false;
  for (double v : exact_) insert_bucketed(v);
  exact_.clear();
  exact_.shrink_to_fit();
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (alpha_ != other.alpha_) {
    throw std::invalid_argument{"sketch merge: alpha mismatch"};
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  if (exact_mode_ && other.exact_mode_ &&
      exact_.size() + other.exact_.size() <= exact_threshold_) {
    exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
    return;
  }
  if (exact_mode_) spill();
  if (other.exact_mode_) {
    for (double v : other.exact_) insert_bucketed(v);
  } else {
    for (const auto& [idx, n] : other.pos_) pos_[idx] += n;
    for (const auto& [idx, n] : other.neg_) neg_[idx] += n;
    zero_ += other.zero_;
  }
}

double QuantileSketch::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }

double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) throw std::logic_error{"quantile of empty sketch"};
  q = std::clamp(q, 0.0, 1.0);
  if (exact_mode_) {
    std::vector<double> sorted = exact_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  // Ascending value order: negatives from most-negative (largest |v|, so
  // largest bucket index) down, then the zero bucket, then positives up.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (auto it = neg_.rbegin(); it != neg_.rend(); ++it) {
    cum += it->second;
    if (static_cast<double>(cum) > rank) {
      return -2.0 * std::pow(gamma_, it->first) / (gamma_ + 1.0);
    }
  }
  cum += zero_;
  if (static_cast<double>(cum) > rank) return 0.0;
  for (const auto& [idx, n] : pos_) {
    cum += n;
    if (static_cast<double>(cum) > rank) {
      return 2.0 * std::pow(gamma_, idx) / (gamma_ + 1.0);
    }
  }
  return max_;  // unreachable unless counts desynced; max is the safe answer
}

std::string QuantileSketch::to_json() const {
  std::string out = "{\"type\":\"ddsketch\",\"alpha\":" + num(alpha_) +
                    ",\"count\":" + std::to_string(count_) +
                    ",\"sum\":" + num(sum_);
  out += ",\"min\":" + (count_ == 0 ? std::string("null") : num(min_));
  out += ",\"max\":" + (count_ == 0 ? std::string("null") : num(max_));
  if (exact_mode_) {
    // Sorted so equal multisets serialize identically however they were
    // accumulated or merged.
    std::vector<double> sorted = exact_;
    std::sort(sorted.begin(), sorted.end());
    out += ",\"exact\":[";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i != 0) out += ',';
      out += num(sorted[i]);
    }
    out += ']';
  } else {
    out += ",\"zero\":" + std::to_string(zero_);
    const auto buckets = [&out](const char* key,
                                const std::map<std::int32_t, std::uint64_t>&
                                    m) {
      out += ",\"";
      out += key;
      out += "\":[";
      bool first = true;
      for (const auto& [idx, n] : m) {
        if (!first) out += ',';
        first = false;
        out += '[' + std::to_string(idx) + ',' + std::to_string(n) + ']';
      }
      out += ']';
    };
    buckets("neg", neg_);
    buckets("pos", pos_);
  }
  out += '}';
  return out;
}

QuantileSketch QuantileSketch::from_json(std::string_view json) {
  const auto alpha_at = find_key(json, "alpha");
  const auto count_at = find_key(json, "count");
  if (alpha_at == std::string_view::npos ||
      count_at == std::string_view::npos) {
    throw std::runtime_error{"sketch json: missing alpha/count"};
  }
  QuantileSketch s{parse_number_at(json, alpha_at)};
  const auto exact_at = find_key(json, "exact");
  if (exact_at != std::string_view::npos) {
    for (double v : parse_number_array(json, exact_at)) s.add(v);
    return s;
  }
  const auto zero_at = find_key(json, "zero");
  const auto neg_at = find_key(json, "neg");
  const auto pos_at = find_key(json, "pos");
  const auto sum_at = find_key(json, "sum");
  const auto min_at = find_key(json, "min");
  const auto max_at = find_key(json, "max");
  if (zero_at == std::string_view::npos || neg_at == std::string_view::npos ||
      pos_at == std::string_view::npos || sum_at == std::string_view::npos) {
    throw std::runtime_error{"sketch json: missing bucket fields"};
  }
  s.exact_mode_ = false;
  s.zero_ = static_cast<std::uint64_t>(parse_number_at(json, zero_at));
  s.neg_ = parse_bucket_array(json, neg_at);
  s.pos_ = parse_bucket_array(json, pos_at);
  s.count_ = static_cast<std::size_t>(parse_number_at(json, count_at));
  s.sum_ = parse_number_at(json, sum_at);
  if (s.count_ > 0) {
    s.min_ = parse_number_at(json, min_at);
    s.max_ = parse_number_at(json, max_at);
  }
  return s;
}

}  // namespace dmp::obs
