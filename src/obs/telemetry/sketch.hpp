// Mergeable streaming quantile sketch (DDSketch-style).
//
// Values are folded into log-spaced buckets: bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha), so the bucket
// midpoint estimate 2*gamma^i/(gamma+1) is within a factor (1+alpha) of any
// value in the bucket — a *relative* error guarantee of alpha on every
// quantile, independent of the data's scale or distribution.  Negative
// values get a mirrored bucket map; near-zeros collapse into a dedicated
// zero bucket.
//
// Small samples stay exact: until `exact_threshold` values have been seen
// the sketch keeps the raw samples and answers quantiles by sorted
// interpolation (the same formula as `dmp::quantile`), spilling into
// buckets only when the threshold is crossed — so per-replication sketches
// of a handful of scalars lose nothing.
//
// merge() is associative and commutative on the bucketed state, which is
// what makes fleet-scale aggregation work: per-replication sketches merged
// in replication-index order produce the same bytes at any DMP_THREADS
// (the experiment runner consumes results in deterministic order).
// Serialization sorts exact-mode samples, so equal multisets always render
// identically regardless of insertion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dmp::obs {

class QuantileSketch {
 public:
  // Default relative-error target: 1% — p99 of a 100 ms delay distribution
  // is reported within ±1 ms.
  static constexpr double kDefaultAlpha = 0.01;
  static constexpr std::size_t kDefaultExactThreshold = 128;

  explicit QuantileSketch(double alpha = kDefaultAlpha,
                          std::size_t exact_threshold = kDefaultExactThreshold);

  // Folds one value in.  Throws on non-finite input: NaN/inf have no
  // log-bucket, and silently dropping them would skew counts.
  void add(double v);

  // Folds `other` in.  Requires matching alpha (bucket bases must agree).
  void merge(const QuantileSketch& other);

  // Quantile estimate for q in [0, 1] (clamped).  Exact (interpolated)
  // below the spill threshold; bucket-midpoint, relative error <= alpha,
  // above it.  Throws on an empty sketch.
  double quantile(double q) const;

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  // 0 when empty (extrema start at +/-inf internally; see report emitters,
  // which render empty extrema as JSON null instead).
  double min() const;
  double max() const;
  double alpha() const { return alpha_; }
  bool exact_mode() const { return exact_mode_; }

  // Canonical single-line JSON; equal sketch states produce equal bytes.
  std::string to_json() const;
  // Inverse of to_json(); throws std::runtime_error on malformed input.
  static QuantileSketch from_json(std::string_view json);

 private:
  void insert_bucketed(double v);
  void spill();  // move exact samples into buckets

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::size_t exact_threshold_;

  bool exact_mode_ = true;
  std::vector<double> exact_;  // raw samples while in exact mode

  // |v| <= kZeroEps counts as zero: the log-bucket index of a true zero is
  // -inf, and values this small are below any simulated timescale.
  static constexpr double kZeroEps = 1e-12;
  std::map<std::int32_t, std::uint64_t> pos_;
  std::map<std::int32_t, std::uint64_t> neg_;
  std::uint64_t zero_ = 0;

  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_;
  double max_;
};

}  // namespace dmp::obs
