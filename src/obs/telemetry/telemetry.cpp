#include "obs/telemetry/telemetry.hpp"

#include <cstdio>
#include <filesystem>

namespace dmp::obs {

SessionTelemetry::SessionTelemetry(TelemetryConfig config)
    : config_(std::move(config)), series_(config_.window_s) {}

QuantileSketch* SessionTelemetry::sketch(const std::string& name) {
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(name, QuantileSketch{config_.sketch_alpha}).first;
  }
  return &it->second;
}

const QuantileSketch* SessionTelemetry::find_sketch(
    const std::string& name) const {
  const auto it = sketches_.find(name);
  return it == sketches_.end() ? nullptr : &it->second;
}

int SessionTelemetry::write_artifacts() {
  if (!config_.write_artifacts) return 0;
  std::error_code ec;
  std::filesystem::create_directories(config_.output_dir, ec);
  int failures = 0;
  if (!series_.write_csv(config_.telemetry_csv_path())) ++failures;
  // One sketch per line, the sketch's own JSON with a leading name field
  // (the scanning parsers key off field names, so the insertion is safe).
  std::FILE* f = std::fopen(config_.sketches_path().c_str(), "wb");
  if (f == nullptr) return failures + 1;
  bool ok = true;
  for (const auto& [name, sketch] : sketches_) {
    std::string line = sketch.to_json();
    line.insert(1, "\"name\":\"" + name + "\",");
    line += '\n';
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      ok = false;
      break;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) ++failures;
  return failures;
}

}  // namespace dmp::obs
