// Per-run telemetry hub: one windowed TimeSeries plus named quantile
// sketches, owned by the session harness and handed to components as raw
// channel/sketch pointers (null when telemetry is off — same contract as
// `obs::Counter*`).  The hub itself knows nothing about links or TCP; it
// is plumbing for the recording points wired in `stream/session`.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "obs/telemetry/sketch.hpp"
#include "obs/telemetry/time_series.hpp"

namespace dmp::obs {

struct TelemetryConfig {
  bool enabled = false;
  // Window width for all time-series channels (simulated seconds).
  double window_s = 1.0;
  // Relative-error target for all sketches.
  double sketch_alpha = QuantileSketch::kDefaultAlpha;
  // Startup delay used for the windowed late-indicator channel (a packet is
  // "late" when its generation-to-delivery delay exceeds this).
  double late_tau_s = 4.0;
  // When set, write_artifacts() emits `<prefix>_telemetry.csv` and
  // `<prefix>_sketches.jsonl` under `output_dir`.
  bool write_artifacts = false;
  std::string output_dir = "bench_out";
  std::string prefix = "run";

  std::string telemetry_csv_path() const {
    return output_dir + "/" + prefix + "_telemetry.csv";
  }
  std::string sketches_path() const {
    return output_dir + "/" + prefix + "_sketches.jsonl";
  }
};

class SessionTelemetry {
 public:
  explicit SessionTelemetry(TelemetryConfig config);

  const TelemetryConfig& config() const { return config_; }
  TimeSeries& series() { return series_; }

  // Get-or-create; stable addresses (node-based map).
  QuantileSketch* sketch(const std::string& name);
  // Null if no such sketch was created.
  const QuantileSketch* find_sketch(const std::string& name) const;
  // Name-sorted view for reports.
  const std::map<std::string, QuantileSketch>& sketches() const {
    return sketches_;
  }

  // Emits the CSV/JSONL artifacts named by the config (no-op unless
  // `write_artifacts`).  Returns the number of files that failed to write.
  int write_artifacts();

 private:
  TelemetryConfig config_;
  TimeSeries series_;
  std::map<std::string, QuantileSketch> sketches_;
};

}  // namespace dmp::obs
