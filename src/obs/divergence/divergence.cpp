#include "obs/divergence/divergence.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace dmp::obs {

namespace {

// Same canonical rendering as the report emitters: %.17g round-trips every
// finite double; non-finite values become JSON null.
std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool DivergencePoint::ok(const DivergenceTolerance& tol) const {
  const double r = residual();
  if (tol.one_sided) return r <= tol.abs;
  if (std::fabs(r) <= tol.abs) return true;
  if (tol.within_ci && std::fabs(r) <= ci_half) return true;
  if (tol.ratio > 1.0 && predicted > 0.0 && measured > 0.0) {
    const double q = predicted / measured;
    if (q >= 1.0 / tol.ratio && q <= tol.ratio) return true;
  }
  return false;
}

DivergenceStats DivergenceSeries::stats() const {
  DivergenceStats s;
  s.count = points.size();
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& p : points) {
    const double r = p.residual();
    sum += r;
    sum_sq += r * r;
    if (!p.ok(tolerance)) ++s.diverged;
    if (std::fabs(r) >= s.max_abs_residual) {
      s.max_abs_residual = std::fabs(r);
      s.worst_setting = p.setting;
      s.worst_x = p.x;
    }
  }
  if (s.count > 0) {
    s.mean_residual = sum / static_cast<double>(s.count);
    s.rms_residual = std::sqrt(sum_sq / static_cast<double>(s.count));
  }
  return s;
}

std::string DivergenceSeries::to_json() const {
  std::string out = "{\"name\": ";
  json_string(out, name);
  out += ", \"metric\": ";
  json_string(out, metric);
  out += ", \"x_label\": ";
  json_string(out, x_label);
  out += ", \"tolerance\": {\"abs\": " + num(tolerance.abs) +
         ", \"ratio\": " + num(tolerance.ratio) +
         ", \"within_ci\": " + (tolerance.within_ci ? "true" : "false") +
         ", \"one_sided\": " + (tolerance.one_sided ? "true" : "false") + "}";
  out += ", \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    if (i) out += ", ";
    out += "{\"setting\": ";
    json_string(out, p.setting);
    out += ", \"x\": " + num(p.x);
    out += ", \"predicted\": " + num(p.predicted);
    out += ", \"measured\": " + num(p.measured);
    out += ", \"ci_half\": " + num(p.ci_half);
    out += ", \"residual\": " + num(p.residual());
    out += ", \"ok\": ";
    out += p.ok(tolerance) ? "true" : "false";
    out += "}";
  }
  const auto st = stats();
  out += "], \"stats\": {\"count\": " + std::to_string(st.count) +
         ", \"diverged\": " + std::to_string(st.diverged) +
         ", \"mean_residual\": " + num(st.mean_residual) +
         ", \"rms_residual\": " + num(st.rms_residual) +
         ", \"max_abs_residual\": " + num(st.max_abs_residual) +
         ", \"worst_setting\": ";
  json_string(out, st.worst_setting);
  out += ", \"worst_x\": " + num(st.worst_x) + "}}";
  return out;
}

std::string divergence_document_json(
    const std::vector<DivergenceSeries>& series) {
  std::string out = "{\"divergence\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i) out += ", ";
    out += series[i].to_json();
  }
  out += "]}";
  return out;
}

bool write_divergence_json(const std::vector<DivergenceSeries>& series,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << divergence_document_json(series) << "\n";
  if (!out) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace dmp::obs
