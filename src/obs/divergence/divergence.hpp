// Divergence observatory: model-vs-simulation residual tracking.
//
// The paper's validation figures (4, 5, 9) are all of the form "analytic
// prediction vs packet-level measurement"; historically each bench
// computed that residual inline, printed it, and threw it away.  A
// DivergenceSeries makes the comparison a first-class artifact: every
// (setting, x) point records the prediction, the measurement, the
// measurement's confidence half-width, and the residual, and the series
// carries the tolerance under which a point counts as matching — so the
// question "where does the model hold and where does it break" has a
// structured, diffable, SLO-gateable answer instead of a scrollback one.
//
// Tolerances default to the paper's own match criterion (Section 5):
// the model matches a point when it falls within the simulation's 95% CI
// or within a decade ratio of the simulated mean.  Benches tighten or
// loosen per figure (fig9's bound is one-sided: the late fraction at the
// returned tau must not exceed the target).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dmp::obs {

// How a point's residual is judged.  A point is `ok` when ANY enabled
// clause accepts it; `diverged` otherwise.
struct DivergenceTolerance {
  // |residual| <= abs is always acceptable (set to the simulation's
  // resolution floor: 1 / (mu * duration * runs) for late fractions).
  double abs = 0.0;
  // > 1 enables the decade-style clause: predicted/measured within
  // [1/ratio, ratio] (both strictly positive).  The paper uses 10.
  double ratio = 0.0;
  // Accept |residual| <= ci_half (the measurement's own uncertainty).
  bool within_ci = true;
  // One-sided series (fig9): only residual = measured - predicted > abs
  // diverges; any undershoot is acceptable.
  bool one_sided = false;
};

// One compared point: an analytic prediction against a simulated (or
// Monte-Carlo) measurement at sweep position `x` of setting `setting`.
struct DivergencePoint {
  std::string setting;
  double x = 0.0;          // sweep coordinate (tau_s, loss rate, ...)
  double predicted = 0.0;  // analytic/model value
  double measured = 0.0;   // simulated/measured value
  double ci_half = 0.0;    // 95% half-width of `measured` (0 if unknown)

  double residual() const { return measured - predicted; }
  bool ok(const DivergenceTolerance& tol) const;
};

// Aggregate residual statistics over a series.
struct DivergenceStats {
  std::size_t count = 0;
  std::size_t diverged = 0;
  double mean_residual = 0.0;
  double rms_residual = 0.0;
  double max_abs_residual = 0.0;
  std::string worst_setting;  // point with the largest |residual|
  double worst_x = 0.0;
};

// A named model-vs-measurement comparison for one figure/metric.
struct DivergenceSeries {
  std::string name;     // e.g. "fig4" — the SLO path segment
  std::string metric;   // e.g. "late_fraction_playback"
  std::string x_label;  // e.g. "tau_s"
  DivergenceTolerance tolerance;
  std::vector<DivergencePoint> points;

  void add(std::string setting, double x, double predicted, double measured,
           double ci_half = 0.0) {
    points.push_back(
        {std::move(setting), x, predicted, measured, ci_half});
  }

  DivergenceStats stats() const;

  // Canonical single-line JSON (%.17g numbers, fixed key order): points in
  // insertion order plus the computed stats block.  Equal series produce
  // equal bytes, so divergence sections diff clean across identical runs.
  std::string to_json() const;
};

// {"divergence": [<series>...]} — the standalone artifact shape shared by
// figure benches without an ExperimentReport (fig9) and by the
// `divergence_report` CLI's --json output.
std::string divergence_document_json(
    const std::vector<DivergenceSeries>& series);

// Writes divergence_document_json to `path`; returns false (after a
// stderr warning) on any I/O failure.
bool write_divergence_json(const std::vector<DivergenceSeries>& series,
                           const std::string& path);

}  // namespace dmp::obs
