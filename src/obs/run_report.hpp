// End-of-run summary: every counter, gauge, and histogram (with quantiles)
// in a registry, plus caller-provided scalars and series (per-path splits,
// late fractions, run parameters), serialized to one JSON file.
//
// The output is deterministic — maps are name-sorted — so report files
// diff cleanly between runs and can be parsed by `scripts/` tooling or
// loaded with any JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dmp::obs {

class RunReport {
 public:
  // Caller-provided summary values, emitted under "meta".
  void set_scalar(const std::string& key, double v);
  void set_scalar(const std::string& key, std::int64_t v);
  void set_text(const std::string& key, const std::string& v);
  // Numeric array, emitted under "series" (e.g. per-path packet splits).
  void set_series(const std::string& key, const std::vector<double>& v);

  // JSON object: {"meta":{...},"series":{...},"counters":{...},
  // "gauges":{...},"histograms":{name:{count,sum,mean,min,max,p50,p90,
  // p99}}}.  `registry` may be null (meta/series only).
  std::string to_json(const MetricsRegistry* registry) const;

  // Writes to_json() to `path`.  I/O failure is reported on stderr and
  // returns false (never throws) — losing the report must not abort the
  // run that produced it.
  bool write(const std::string& path, const MetricsRegistry* registry) const;

 private:
  std::map<std::string, std::string> meta_;  // values pre-rendered as JSON
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace dmp::obs
