#include "fault/fault_injector.hpp"

#include <stdexcept>

namespace dmp::fault {

FaultInjector::FaultInjector(Scheduler& sched, FaultPlan plan, SimTime epoch)
    : sched_(sched), plan_(std::move(plan)), epoch_(epoch) {}

void FaultInjector::add_path(const std::string& name, std::int32_t path_index,
                             PathFaultTarget target) {
  if (arm_called_) {
    throw std::logic_error{"fault injector: add_path after arm()"};
  }
  targets_[name] = Registered{path_index, std::move(target)};
}

const FaultInjector::Registered& FaultInjector::registered_for(
    const FaultEvent& e) const {
  const auto it = targets_.find(e.target);
  if (it == targets_.end()) {
    throw std::invalid_argument{"fault plan: unknown target '" + e.target +
                                "' in event '" + e.to_string() + "'"};
  }
  return it->second;
}

void FaultInjector::arm() {
  if (arm_called_) throw std::logic_error{"fault injector: arm() twice"};
  arm_called_ = true;
  // Validate everything before scheduling anything: a plan either replays
  // in full or is rejected whole.
  for (const FaultEvent& e : plan_.events) {
    const Registered& reg = registered_for(e);
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        if (!reg.target.set_down) {
          throw std::invalid_argument{
              "fault plan: target '" + e.target + "' cannot link_down/up"};
        }
        break;
      case FaultKind::kBurstLoss:
        if (!reg.target.burst_loss) {
          throw std::invalid_argument{
              "fault plan: target '" + e.target + "' cannot burst_loss"};
        }
        break;
      case FaultKind::kRescale:
        if (!reg.target.rescale) {
          throw std::invalid_argument{
              "fault plan: target '" + e.target + "' cannot rescale"};
        }
        break;
      case FaultKind::kConnReset:
        throw std::invalid_argument{
            "fault plan: conn_reset is an inet-layer event (event '" +
            e.to_string() + "'); simulated sessions cannot replay it"};
    }
  }
  for (const FaultEvent& e : plan_.events) {
    sched_.post_at(epoch_ + SimTime::seconds(e.t_s),
                   [this, &e] { fire(e); }, EventCategory::kFault);
    ++armed_;
  }
}

void FaultInjector::fire(const FaultEvent& e) {
  const Registered& reg = registered_for(e);
  // Record first so the trace shows the fault before its consequences
  // (reclaim pulls, fault drops) at the same timestamp.
  if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
    event_log_->record(
        sched_.now().to_seconds(), obs::Severity::kWarn, "fault",
        {obs::EventField::text("kind", std::string(fault_kind_name(e.kind))),
         obs::EventField::text("target", e.target),
         obs::EventField::num("count", e.count),
         obs::EventField::num("bw_factor", e.bw_factor),
         obs::EventField::num("delay_factor", e.delay_factor)});
  }
  if (flight_) {
    obs::FlightEvent fe;
    fe.t_ns = sched_.now().ns();
    fe.kind = obs::FlightEventKind::kPathFault;
    fe.path = reg.index;
    fe.seq = static_cast<std::int64_t>(e.kind);
    if (e.kind == FaultKind::kBurstLoss) {
      fe.queue = static_cast<std::int64_t>(e.count);
    }
    flight_->record(fe);
  }
  ++fired_;
  switch (e.kind) {
    case FaultKind::kLinkDown:
      reg.target.set_down(true);
      break;
    case FaultKind::kLinkUp:
      reg.target.set_down(false);
      break;
    case FaultKind::kBurstLoss:
      reg.target.burst_loss(e.count);
      break;
    case FaultKind::kRescale:
      reg.target.rescale(e.bw_factor, e.delay_factor);
      break;
    case FaultKind::kConnReset:
      break;  // rejected by arm()
  }
}

}  // namespace dmp::fault
