// Deterministic fault schedules: the paper's robustness claim (Sections
// 5.3, 7 — DMP shifts load to surviving paths while single-path streaming
// stalls) can only be exercised if links can fail on cue.  A FaultPlan is
// a list of timed events parsed from a compact spec string,
//
//   DMP_FAULTS="3.0 link_down path1; 8.0 link_up path1"
//
// replayed by a FaultInjector (fault_injector.hpp) against named paths.
// Event times are seconds relative to the video epoch (generation start),
// so the same plan means the same thing at any warmup length.
//
// Grammar (docs/FAULT_INJECTION.md has the full semantics):
//
//   plan   := event (';' event)*
//   event  := time kind target arg*
//   kind   := link_down | link_up | burst_loss | rescale | conn_reset
//   target := path<k>          (0-based path index)
//
//   burst_loss takes one argument, the number of packets to drop;
//   rescale takes bw=<factor> and/or delay=<factor> (relative to the
//   path's configured values); link_down/link_up/conn_reset take none.
//
// Parsing is strict — an unknown kind, a malformed number, a missing
// argument all throw std::invalid_argument naming the offending event —
// because a silently-ignored fault would turn a robustness experiment
// into a no-fault control without anyone noticing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dmp::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown = 0,   // drop arrivals, freeze the queue, stop dequeueing
  kLinkUp = 1,     // restore the link; frozen queue resumes draining
  kBurstLoss = 2,  // drop the next `count` packets arriving at the path
  kRescale = 3,    // multiply bandwidth / propagation delay by factors
  kConnReset = 4,  // inet layer: force-close the path's TCP connection
};

std::string_view fault_kind_name(FaultKind kind);

struct FaultEvent {
  double t_s = 0.0;  // seconds relative to the video epoch
  FaultKind kind = FaultKind::kLinkDown;
  std::string target;             // path name, e.g. "path1"
  std::uint64_t count = 0;        // kBurstLoss: packets to drop
  double bw_factor = 1.0;         // kRescale: relative to configured values
  double delay_factor = 1.0;

  // Canonical single-event spec (reparses to an equal event).
  std::string to_string() const;
};

struct FaultPlan {
  // Stably sorted by time: simultaneous events keep their spec order.
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  // Parses a spec string; whitespace-insensitive between tokens, empty
  // (or all-whitespace) spec yields an empty plan.  Throws
  // std::invalid_argument on any malformed event.
  static FaultPlan parse(const std::string& spec);

  // Canonical spec string ("; "-joined events in time order);
  // parse(to_string()) round-trips.
  std::string to_string() const;
};

// Extracts k from a "path<k>" target; returns false (leaving *index
// untouched) for any other shape.  Used by consumers that map targets to
// dense path arrays (session harness, inet server).
bool parse_path_index(const std::string& target, std::size_t* index);

}  // namespace dmp::fault
