// Schedule-driven fault replay for the discrete-event layer.
//
// The injector owns no network objects: the session harness registers one
// PathFaultTarget per named path, a bundle of callbacks that translate a
// FaultEvent into concrete actions (down the dumbbell bottleneck, notify
// the streaming server so it reclaims the stalled sender's unsent share,
// arm a burst-loss counter, rescale link parameters).  arm() validates
// every event against the registered targets up front — an unknown path
// or an event kind the target cannot perform throws immediately, before
// any simulated time passes — then schedules one fire-and-forget event
// per FaultEvent at epoch + t on the shared scheduler.
//
// Determinism contract (pinned by tests/fault/):
//   * an empty plan schedules nothing — the session harness does not even
//     construct an injector, so a no-fault run is byte-identical to a
//     build without the injector in the path;
//   * fault events ride the same scheduler heap as packet events, so the
//     FIFO tie-break serializes them reproducibly and replay is identical
//     at any DMP_THREADS (plans live in SessionConfig, which the
//     experiment runner copies per replication).
//
// Every fired event is recorded in the obs event log (kWarn "fault") and
// as a kPathFault flight-recorder event, which feeds the `path_fault`
// deadline-miss cause in obs::TraceAnalyzer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/scheduler.hpp"
#include "util/sim_time.hpp"

namespace dmp::fault {

// Capability bundle for one named path.  Unset capabilities reject plans
// that need them (at arm() time, not silently at fire time).
struct PathFaultTarget {
  std::function<void(bool down)> set_down;            // link_down / link_up
  std::function<void(std::uint64_t count)> burst_loss;
  std::function<void(double bw_factor, double delay_factor)> rescale;
};

class FaultInjector {
 public:
  // Event times in `plan` are relative to `epoch` on `sched`'s clock.
  FaultInjector(Scheduler& sched, FaultPlan plan, SimTime epoch);

  // Registers the target for `name` ("path0", "path1", ...).  `path_index`
  // tags the path in flight-recorder events.  Must precede arm().
  void add_path(const std::string& name, std::int32_t path_index,
                PathFaultTarget target);

  // Validates the whole plan against the registered targets, then
  // schedules every event.  Throws std::invalid_argument on an unknown
  // target, a missing capability, or a conn_reset event (which only the
  // inet layer can perform).  Call at most once.
  void arm();

  std::size_t events_armed() const { return armed_; }
  std::size_t events_fired() const { return fired_; }
  const FaultPlan& plan() const { return plan_; }

  void set_event_log(obs::EventLog* log) { event_log_ = log; }
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

 private:
  struct Registered {
    std::int32_t index = -1;
    PathFaultTarget target;
  };

  void fire(const FaultEvent& e);
  const Registered& registered_for(const FaultEvent& e) const;

  Scheduler& sched_;
  FaultPlan plan_;
  SimTime epoch_;
  std::map<std::string, Registered> targets_;
  std::size_t armed_ = 0;
  std::size_t fired_ = 0;
  bool arm_called_ = false;

  obs::EventLog* event_log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace dmp::fault
