#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace dmp::fault {

namespace {

[[noreturn]] void bad(const std::string& event_text, const std::string& why) {
  throw std::invalid_argument{"fault plan: bad event '" + event_text +
                              "': " + why};
}

std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

double parse_f64(const std::string& event_text, const std::string& text,
                 const char* what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    bad(event_text, std::string(what) + " '" + text + "' is not a number");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& event_text, const std::string& text,
                        const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad(event_text,
        std::string(what) + " '" + text + "' is not a non-negative integer");
  }
  return v;
}

std::string format_factor(double v) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 12);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("nan");
}

FaultEvent parse_event(const std::string& event_text) {
  const auto tokens = split_tokens(event_text);
  if (tokens.size() < 3) {
    bad(event_text, "expected '<time> <kind> <target> ...'");
  }
  FaultEvent e;
  e.t_s = parse_f64(event_text, tokens[0], "time");
  if (e.t_s < 0.0) bad(event_text, "time must be >= 0");
  const std::string& kind = tokens[1];
  e.target = tokens[2];
  if (kind == "link_down" || kind == "link_up" || kind == "conn_reset") {
    if (tokens.size() != 3) bad(event_text, kind + " takes no arguments");
    e.kind = kind == "link_down"
                 ? FaultKind::kLinkDown
                 : (kind == "link_up" ? FaultKind::kLinkUp
                                      : FaultKind::kConnReset);
  } else if (kind == "burst_loss") {
    if (tokens.size() != 4) bad(event_text, "burst_loss takes one count");
    e.kind = FaultKind::kBurstLoss;
    e.count = parse_u64(event_text, tokens[3], "count");
    if (e.count == 0) bad(event_text, "burst_loss count must be >= 1");
  } else if (kind == "rescale") {
    if (tokens.size() < 4) {
      bad(event_text, "rescale needs bw=<factor> and/or delay=<factor>");
    }
    e.kind = FaultKind::kRescale;
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      const std::string& arg = tokens[i];
      double* slot = nullptr;
      std::string value;
      if (arg.rfind("bw=", 0) == 0) {
        slot = &e.bw_factor;
        value = arg.substr(3);
      } else if (arg.rfind("delay=", 0) == 0) {
        slot = &e.delay_factor;
        value = arg.substr(6);
      } else {
        bad(event_text, "unknown rescale argument '" + arg + "'");
      }
      *slot = parse_f64(event_text, value, "factor");
      if (!(*slot > 0.0)) bad(event_text, "factors must be > 0");
    }
  } else {
    bad(event_text, "unknown kind '" + kind + "'");
  }
  return e;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kBurstLoss: return "burst_loss";
    case FaultKind::kRescale: return "rescale";
    case FaultKind::kConnReset: return "conn_reset";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::string out = format_factor(t_s);
  out += ' ';
  out += fault_kind_name(kind);
  out += ' ';
  out += target;
  if (kind == FaultKind::kBurstLoss) {
    out += ' ';
    out += std::to_string(count);
  } else if (kind == FaultKind::kRescale) {
    out += " bw=" + format_factor(bw_factor);
    out += " delay=" + format_factor(delay_factor);
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string event_text = spec.substr(begin, end - begin);
    const bool blank = std::all_of(event_text.begin(), event_text.end(),
                                   [](unsigned char c) {
                                     return std::isspace(c) != 0;
                                   });
    if (!blank) plan.events.push_back(parse_event(event_text));
    begin = end + 1;
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.t_s < b.t_s;
                   });
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += "; ";
    out += e.to_string();
  }
  return out;
}

bool parse_path_index(const std::string& target, std::size_t* index) {
  if (target.rfind("path", 0) != 0 || target.size() == 4) return false;
  const char* begin = target.data() + 4;
  const char* end = target.data() + target.size();
  std::size_t v = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) return false;
  *index = v;
  return true;
}

}  // namespace dmp::fault
