// Unidirectional link: a pluggable queue discipline feeding a fixed-rate
// transmitter with constant propagation delay.  With the default DropTail
// discipline this is the ns-2 DropTail/DelayLink pair in one object,
// byte-identical to the pre-qdisc implementation; PIE / FQ-PIE / CoDel
// (src/net/qdisc/) swap the enqueue/drop decision without touching the
// transmitter, fault hooks or observability.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/demux.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "net/qdisc/droptail.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/time_series.hpp"
#include "sim/scheduler.hpp"
#include "util/sim_time.hpp"

namespace dmp {

struct LinkConfig {
  double bandwidth_bps = 10e6;
  SimTime prop_delay = SimTime::millis(10);
  // Queue capacity in packets (the paper's Table-1 buffers are in packets);
  // 0 means unbounded (used for access links that must never drop).
  std::size_t buffer_packets = 0;
  // Queue discipline (default drop-tail; see src/net/qdisc/).  AQM
  // disciplines that draw early-drop trials read `qdisc.seed`.
  QdiscSpec qdisc{};
};

// Per-flow arrival/drop counters at the link's queue; the paper's measured
// per-path loss probability p_k is drops/arrivals of the video flow at the
// bottleneck.  Under AQM, `drops` counts every congestion discard (early +
// overlimit) — the loss process TCP actually sees.
struct LinkFlowCounters {
  std::uint64_t arrivals = 0;
  std::uint64_t drops = 0;
};

class Link {
 public:
  Link(Scheduler& sched, LinkConfig config);

  // Downstream receiver; must be set before the first send.  The Link and
  // FlowDemux overloads devirtualize the hop — delivery calls the next
  // stage directly instead of going through a std::function.
  void set_receiver(PacketHandler receiver) {
    next_link_ = nullptr;
    next_demux_ = nullptr;
    receiver_ = std::move(receiver);
  }
  void set_receiver(Link* next) {
    next_link_ = next;
    next_demux_ = nullptr;
    receiver_ = nullptr;
  }
  void set_receiver(FlowDemux* demux) {
    next_link_ = nullptr;
    next_demux_ = demux;
    receiver_ = nullptr;
  }

  // Offer to the queue discipline; may drop (tail or AQM-early) on arrival,
  // and AQM disciplines may additionally discard queued packets later.
  void send(const Packet& p);

  std::size_t queue_length() const { return qlen(); }
  const LinkConfig& config() const { return config_; }

  // Aggregate and per-flow counters.
  std::uint64_t total_arrivals() const { return total_arrivals_; }
  std::uint64_t total_drops() const { return total_drops_; }
  std::uint64_t total_delivered() const { return total_delivered_; }
  LinkFlowCounters flow_counters(FlowId flow) const;

  // Queue-discipline identity and per-reason discard tallies
  // (counters().early_drops stays 0 on a droptail link).
  const char* qdisc_name() const { return qdisc_->name(); }
  const QdiscCounters& qdisc_counters() const { return qdisc_->counters(); }

  // Busy-time integral, for utilization diagnostics.
  double utilization(SimTime elapsed) const;

  // --- fault hooks (src/fault/; all inert until first used) ---
  // While down the link drops every arrival (counted in fault_drops(), NOT
  // in the congestion counters the measured p_k is built from), finishes
  // the transmission already on the wire, and freezes its queue.  Raising
  // the link resumes draining the frozen queue.
  void set_down(bool down);
  bool down() const { return down_; }
  // Drops the next `count` arrivals (burst loss); cumulative across calls.
  void drop_next(std::uint64_t count) { burst_remaining_ += count; }
  std::uint64_t burst_remaining() const { return burst_remaining_; }
  // Rescales bandwidth / propagation delay relative to the CONSTRUCTED
  // configuration (factors do not compound), applying to future
  // transmissions only.  Factors must be > 0.
  void rescale(double bw_factor, double delay_factor);
  // Arrivals discarded by link_down / burst_loss faults.
  std::uint64_t fault_drops() const { return fault_drops_; }

  // --- observability (all optional; no-ops when never called) ---
  // Registers `<prefix>.queue_depth` (gauge, samples this link) and
  // `<prefix>.{arrivals,drops,delivered}` (counters, incremented on the
  // hot path alongside the local totals).  Non-droptail links additionally
  // register `<prefix>.early_drops` (AQM controller discards), so default
  // runs export exactly the legacy metric set.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);
  // Emits a kWarn "drop" event per congestion discard ("fault_drop" for
  // injected ones).
  void set_event_log(obs::EventLog* log) { event_log_ = log; }
  // Records per-stream-packet queue entry/exit/drop span events (packets
  // with app_tag < 0 — ACKs, background traffic — are ignored).  `hop`
  // identifies this link in the trace.
  void set_flight_recorder(obs::FlightRecorder* recorder, std::int32_t hop) {
    flight_ = recorder;
    flight_hop_ = hop;
  }
  // Windowed telemetry channels (any may be null): packets forwarded per
  // window, congestion discards per window, and queue-depth samples taken
  // on every enqueue/dequeue.  Null pointers keep the hot path identical
  // to an uninstrumented link.
  void set_telemetry(obs::TimeSeriesChannel* delivered,
                     obs::TimeSeriesChannel* drops,
                     obs::TimeSeriesChannel* queue_depth) {
    ts_delivered_ = delivered;
    ts_drops_ = drops;
    ts_queue_ = queue_depth;
  }

 private:
  // One in-flight delivery: a (when, seq) key claimed from the scheduler at
  // schedule time plus the pooled packet.  Only the FIFO head is armed in
  // the event queue; the rest wait here (docs/DES_ENGINE.md).
  struct PendingDelivery {
    SimTime when;
    std::uint64_t seq;
    PacketPool::Ref ref;
  };

  static void tx_done_port(void* ctx) {
    static_cast<Link*>(ctx)->on_transmit_done();
  }
  static void delivery_port(void* ctx) {
    static_cast<Link*>(ctx)->on_delivery();
  }

  void start_transmission(const Packet& p);
  void on_transmit_done();
  void on_delivery();
  void deliver(const Packet& p);
  void on_qdisc_drop(const Packet& victim, QdiscDropReason reason);
  LinkFlowCounters& flow_slot(FlowId flow);

  // Devirtualized queue ops for the default discipline: DropTailQdisc is
  // final, so these inline to deque operations; AQM links take the
  // virtual call.  Identical semantics either way.
  std::size_t qlen() const {
    return droptail_ ? droptail_->len() : qdisc_->len();
  }
  // Packet sizes on a link are near-constant (MSS data one way, fixed-size
  // ACKs the other), so a one-entry cache removes the per-packet double
  // divide; transmission_time is pure, so the cached value is identical.
  SimTime tx_time(std::int64_t bytes) {
    if (bytes != tx_cache_bytes_) {
      tx_cache_bytes_ = bytes;
      tx_cache_ = transmission_time(bytes, config_.bandwidth_bps);
    }
    return tx_cache_;
  }
  bool q_enqueue(const Packet& p, SimTime now) {
    return droptail_ ? droptail_->enqueue(p, now) : qdisc_->enqueue(p, now);
  }
  bool q_dequeue(Packet* out, SimTime now) {
    return droptail_ ? droptail_->dequeue(out, now)
                     : qdisc_->dequeue(out, now);
  }

  Scheduler& sched_;
  LinkConfig config_;
  const LinkConfig base_config_;  // rescale() factors are relative to this
  Link* next_link_ = nullptr;      // devirtualized receiver (one of three)
  FlowDemux* next_demux_ = nullptr;
  PacketHandler receiver_;
  std::unique_ptr<QueueDiscipline> qdisc_;
  DropTailQdisc* droptail_ = nullptr;  // set iff qdisc_ is the default
  std::int64_t tx_cache_bytes_ = -1;   // tx_time() cache key; reset on rescale
  SimTime tx_cache_ = SimTime::zero();
  // True for non-droptail disciplines: gates the AQM-only observability
  // (drop-cause trace field, early-drop counter, event-log reason) so the
  // default configuration's artifacts stay byte-identical to pre-qdisc.
  const bool aqm_;
  bool transmitting_ = false;
  Packet in_flight_{};

  bool down_ = false;
  std::uint64_t burst_remaining_ = 0;
  std::uint64_t fault_drops_ = 0;

  std::uint64_t total_arrivals_ = 0;
  std::uint64_t total_drops_ = 0;
  std::uint64_t total_delivered_ = 0;
  SimTime busy_time_ = SimTime::zero();
  // Flat per-flow counters: a link carries a handful of flows, and send()
  // touches this on every arrival — a hinted linear scan beats hashing.
  std::vector<std::pair<FlowId, LinkFlowCounters>> per_flow_;
  std::size_t flow_hint_ = 0;  // index of the last flow touched

  // In-flight deliveries (FIFO by construction: propagation delay is
  // constant between rescales, so (when, seq) is nondecreasing).  Head is
  // armed in the scheduler; `deliveries_head_` is the ring's pop cursor.
  std::vector<PendingDelivery> deliveries_;
  std::size_t deliveries_head_ = 0;
  PacketPool pool_;
  std::uint32_t tx_done_port_id_ = 0;
  std::uint32_t delivery_port_id_ = 0;

  void record_flight(const Packet& p, obs::FlightEventKind kind,
                     std::size_t queue_depth,
                     obs::DropCause cause = obs::DropCause::kNone);

  obs::Counter* m_arrivals_ = nullptr;
  obs::Counter* m_drops_ = nullptr;
  obs::Counter* m_early_drops_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::int32_t flight_hop_ = -1;
  obs::TimeSeriesChannel* ts_delivered_ = nullptr;
  obs::TimeSeriesChannel* ts_drops_ = nullptr;
  obs::TimeSeriesChannel* ts_queue_ = nullptr;
};

}  // namespace dmp
