// Free-list packet pool for link-owned in-flight FIFOs.
//
// A link's deferred deliveries used to ride the scheduler as lambda
// captures — every 40-byte Packet copied into a type-erased callable and
// back out again.  The pool replaces that with an arena: slots are
// recycled through a free list (steady state allocates nothing), and each
// handle carries the slot's generation so a stale reference — a ref held
// across release, the classic recycled-slot bug — is detectable instead of
// silently reading another packet's bytes.  Generation checks are debug
// asserts: the release builds that benches measure pay a plain indexed
// load, the sanitizer suite (scripts/check.sh) runs them.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace dmp {

class PacketPool {
 public:
  struct Ref {
    std::uint32_t index = 0;
    std::uint32_t gen = 0;
  };

  Ref acquire(const Packet& p) {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(SlotEntry{});
    }
    slots_[index].packet = p;
    ++in_use_;
    return Ref{index, slots_[index].gen};
  }

  // True while `ref` names a live (acquired, not yet released) packet.
  bool valid(Ref ref) const {
    return ref.index < slots_.size() && slots_[ref.index].gen == ref.gen;
  }

  const Packet& get(Ref ref) const {
    assert(valid(ref) && "PacketPool: stale or foreign ref");
    return slots_[ref.index].packet;
  }

  // Copy out and release in one step — the delivery-FIFO pop.
  Packet take(Ref ref) {
    assert(valid(ref) && "PacketPool: stale or foreign ref");
    Packet p = slots_[ref.index].packet;
    release(ref);
    return p;
  }

  void release(Ref ref) {
    assert(valid(ref) && "PacketPool: double release");
    ++slots_[ref.index].gen;
    free_.push_back(ref.index);
    --in_use_;
  }

  std::size_t in_use() const { return in_use_; }
  // Arena high-water: slots ever allocated (never shrinks).
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct SlotEntry {
    Packet packet{};
    std::uint32_t gen = 0;
  };

  std::vector<SlotEntry> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t in_use_ = 0;
};

}  // namespace dmp
