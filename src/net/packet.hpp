// Packet representation shared by every simulated protocol layer.
//
// Packets are small value types copied through the pipeline; sequence
// numbers are in packet units (MSS-sized segments), matching the ns-2 TCP
// agent abstraction the paper's simulations are built on.
#pragma once

#include <cstdint>
#include <functional>

#include "util/sim_time.hpp"

namespace dmp {

using FlowId = std::uint32_t;

enum class PacketKind : std::uint8_t { kData, kAck };

struct Packet {
  FlowId flow = 0;
  PacketKind kind = PacketKind::kData;
  // For data: segment sequence number.  For ACKs: cumulative ack number
  // (next expected segment).
  std::int64_t seq = 0;
  std::uint32_t size_bytes = 0;
  // Application tag carried end-to-end: the stream packet number for video
  // segments, -1 otherwise.  Retransmissions carry the original tag.
  std::int64_t app_tag = -1;
  // Time the packet entered the network (diagnostics only).
  SimTime injected = SimTime::zero();
};

// Downstream delivery target of a link / pipeline stage.
using PacketHandler = std::function<void(const Packet&)>;

inline constexpr std::uint32_t kDataPacketBytes = 1500;  // MTU-sized segments
inline constexpr std::uint32_t kAckPacketBytes = 40;

}  // namespace dmp
