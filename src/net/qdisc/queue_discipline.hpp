// Pluggable queue disciplines for the bottleneck link.
//
// Every figure in the paper assumes a drop-tail bottleneck; AQM reshapes
// exactly the loss/RTT processes the DMP scheme (and the CTMC model fed
// from them) exploits.  QueueDiscipline extracts the enqueue/drop decision
// from Link::send behind an interface so the same link core can run
// DropTail, PIE (RFC 8033), FQ-PIE (per-flow hashing + DRR) and CoDel
// (RFC 8289), chosen by a validated spec string (the DMP_QDISC bench
// knob, grammar mirroring DMP_SCHED).
//
// Contract (see docs/AQM.md for controller equations and counters):
//   * The qdisc owns the packet queue; the Link owns the transmitter and
//     all observability.  Drops — whether the arriving packet, a different
//     victim (FQ-PIE overlimit) or a queued head (CoDel, at dequeue) — are
//     reported through the drop handler so the Link's counters, event log
//     and flight recorder see every discard exactly once.
//   * `droptail` reproduces the legacy Link::send decision exactly: same
//     admit/drop sequence, no RNG consumed, so the default configuration —
//     and therefore every golden figure — is byte-identical to the
//     pre-interface implementation (pinned by tests/net/qdisc_test.cpp and
//     the fault/golden_figures_test droptail pins).
//   * AQM controllers are deterministic: PIE steps its drop-probability
//     controller lazily off arrival timestamps (no scheduler timers) and
//     draws early-drop trials from a per-link seeded Rng, so runs are a
//     pure function of (config, seed) at any DMP_THREADS.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace dmp {

// Why a qdisc discarded a packet.  kOverlimit is the buffer-limit discard
// every discipline can make (for droptail it is the only one); kEarly is
// an AQM controller decision taken while the buffer still has room.
enum class QdiscDropReason : std::uint8_t { kOverlimit, kEarly };

std::string_view qdisc_drop_reason_name(QdiscDropReason reason);

// Discard tallies by reason.  `ecn_marks` is reserved: the repo's Reno
// senders do not negotiate ECN, so AQM signals congestion by dropping.
struct QdiscCounters {
  std::uint64_t overlimit_drops = 0;
  std::uint64_t early_drops = 0;
  std::uint64_t ecn_marks = 0;
};

class QueueDiscipline {
 public:
  // Called once per discard, before enqueue()/dequeue() return, with the
  // victim packet (not necessarily the packet being enqueued) and the
  // reason.  The Link routes this into its drop counters / event log /
  // flight recorder.
  using DropHandler = std::function<void(const Packet&, QdiscDropReason)>;

  virtual ~QueueDiscipline() = default;

  // Canonical kind name ("droptail", "pie", "fq_pie", "codel").
  virtual const char* name() const = 0;

  // Offers `p` to the queue.  Returns false when the ARRIVING packet was
  // not admitted (it was dropped and reported); true when it was queued —
  // possibly after a different victim was dropped to make room.
  virtual bool enqueue(const Packet& p, SimTime now) = 0;

  // Pops the next packet to transmit into `*out`.  Returns false when the
  // queue is empty (CoDel may discard queued packets and then report
  // empty).  `now` is the dequeue instant, used for sojourn-time AQM.
  virtual bool dequeue(Packet* out, SimTime now) = 0;

  // Packets currently queued (excludes the one on the wire).
  virtual std::size_t len() const = 0;

  // The transmitter's drain rate, for queue-delay estimates (PIE).  Set at
  // link construction and again on fault-injected rescale.
  virtual void set_drain_rate(double /*bps*/) {}

  void set_drop_handler(DropHandler handler) {
    drop_handler_ = std::move(handler);
  }
  const QdiscCounters& counters() const { return counters_; }

 protected:
  // Tallies and reports one discard; implementations call this for every
  // packet they throw away.
  void drop(const Packet& p, QdiscDropReason reason) {
    if (reason == QdiscDropReason::kEarly) {
      ++counters_.early_drops;
    } else {
      ++counters_.overlimit_drops;
    }
    if (drop_handler_) drop_handler_(p, reason);
  }

 private:
  DropHandler drop_handler_;
  QdiscCounters counters_;
};

// --- controller parameter defaults (RFC 8033 / RFC 8289) ---
inline constexpr double kPieDefaultTargetS = 0.015;
inline constexpr double kPieDefaultTupdateS = 0.015;
inline constexpr double kPieAlpha = 0.125;   // per-tupdate, on qdelay error
inline constexpr double kPieBeta = 1.25;     // per-tupdate, on qdelay trend
inline constexpr double kPieMaxBurstS = 0.15;
inline constexpr double kCoDelDefaultTargetS = 0.005;
inline constexpr double kCoDelDefaultIntervalS = 0.1;
inline constexpr int kFqPieDefaultFlows = 64;
inline constexpr int kFqPieMaxFlows = 4096;
// Sanity ceilings for spec-supplied timescales (milliseconds).
inline constexpr double kQdiscMaxTargetMs = 10'000.0;
inline constexpr double kQdiscMaxIntervalMs = 60'000.0;

// Parsed, validated qdisc spec — the DMP_QDISC grammar:
//   droptail | pie[:target_ms[,tupdate_ms]] | fq_pie[:flows] |
//   codel[:target_ms[,interval_ms]]
struct QdiscSpec {
  enum class Kind : std::uint8_t { kDropTail, kPie, kFqPie, kCoDel };
  Kind kind = Kind::kDropTail;
  double target_s = 0.0;    // pie/codel qdelay target (0 = kind default)
  double interval_s = 0.0;  // pie tupdate / codel interval (0 = default)
  int flows = 0;            // fq_pie bucket count (0 = default)
  std::string text = "droptail";  // canonical spec string
  // Per-link RNG root for probabilistic early drops (PIE / FQ-PIE); the
  // session derives it from the run seed (seed_domain kind 18) per path.
  // Deterministic disciplines ignore it.
  std::uint64_t seed = 0;

  // Throws std::invalid_argument naming the bad token and the accepted set.
  static QdiscSpec parse(const std::string& spec);

  bool droptail() const { return kind == Kind::kDropTail; }
  // Kind name for report fields and artifact suffixes.
  const char* kind_name() const;
};

// The accepted-spec set, for error messages and option docs.
const char* qdisc_spec_grammar();

// Builds the discipline for `spec` with the link's buffer limit in packets
// (0 = unbounded, matching LinkConfig::buffer_packets).
std::unique_ptr<QueueDiscipline> make_queue_discipline(
    const QdiscSpec& spec, std::size_t buffer_packets);

}  // namespace dmp
