#include "net/qdisc/queue_discipline.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "net/qdisc/codel.hpp"
#include "net/qdisc/droptail.hpp"
#include "net/qdisc/fq_pie.hpp"
#include "net/qdisc/pie.hpp"

namespace dmp {

namespace {

[[noreturn]] void bad_spec(const std::string& message) {
  throw std::invalid_argument{message + " (accepted: " +
                              qdisc_spec_grammar() + ")"};
}

// Strict full-token millisecond parse; "5x", "" and non-finite are errors.
double parse_ms(const std::string& spec, const std::string& token,
                const char* what, double max_ms) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    bad_spec("bad " + std::string(what) + " '" + token + "' in qdisc spec '" +
             spec + "'");
  }
  if (!(v > 0.0) || v > max_ms) {
    bad_spec(std::string(what) + " " + token + " out of range (0, " +
             std::to_string(static_cast<long long>(max_ms)) +
             "] ms in qdisc spec '" + spec + "'");
  }
  return v;
}

// Splits `rest` at the first comma into at most two millisecond tokens.
void parse_ms_pair(const std::string& spec, const std::string& rest,
                   const char* first_what, const char* second_what,
                   double second_max_ms, double* first_s, double* second_s) {
  const std::size_t comma = rest.find(',');
  const std::string first_tok = rest.substr(0, comma);
  *first_s = parse_ms(spec, first_tok, first_what, kQdiscMaxTargetMs) / 1e3;
  if (comma == std::string::npos) return;
  const std::string second_tok = rest.substr(comma + 1);
  if (second_tok.find(',') != std::string::npos) {
    bad_spec("qdisc spec '" + spec + "' has too many parameters");
  }
  *second_s = parse_ms(spec, second_tok, second_what, second_max_ms) / 1e3;
}

}  // namespace

std::string_view qdisc_drop_reason_name(QdiscDropReason reason) {
  switch (reason) {
    case QdiscDropReason::kOverlimit: return "overlimit";
    case QdiscDropReason::kEarly: return "early";
  }
  return "?";
}

const char* qdisc_spec_grammar() {
  return "droptail, pie[:target_ms[,tupdate_ms]], fq_pie[:flows], "
         "codel[:target_ms[,interval_ms]]";
}

const char* QdiscSpec::kind_name() const {
  switch (kind) {
    case Kind::kDropTail: return "droptail";
    case Kind::kPie: return "pie";
    case Kind::kFqPie: return "fq_pie";
    case Kind::kCoDel: return "codel";
  }
  return "?";
}

QdiscSpec QdiscSpec::parse(const std::string& spec) {
  QdiscSpec out;
  out.text = spec;
  if (spec == "droptail") {
    out.kind = Kind::kDropTail;
    return out;
  }
  if (spec == "pie" || spec.rfind("pie:", 0) == 0) {
    out.kind = Kind::kPie;
    if (spec.size() > 4) {
      parse_ms_pair(spec, spec.substr(4), "target", "tupdate",
                    kQdiscMaxTargetMs, &out.target_s, &out.interval_s);
    } else if (spec.size() == 4) {
      bad_spec("qdisc spec '" + spec + "' has an empty parameter list");
    }
    return out;
  }
  if (spec == "codel" || spec.rfind("codel:", 0) == 0) {
    out.kind = Kind::kCoDel;
    if (spec.size() > 6) {
      parse_ms_pair(spec, spec.substr(6), "target", "interval",
                    kQdiscMaxIntervalMs, &out.target_s, &out.interval_s);
    } else if (spec.size() == 6) {
      bad_spec("qdisc spec '" + spec + "' has an empty parameter list");
    }
    return out;
  }
  if (spec == "fq_pie" || spec.rfind("fq_pie:", 0) == 0) {
    out.kind = Kind::kFqPie;
    if (spec.size() > 7) {
      const std::string token = spec.substr(7);
      errno = 0;
      char* end = nullptr;
      const long flows = std::strtol(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
        bad_spec("bad flow count '" + token + "' in qdisc spec '" + spec +
                 "'");
      }
      if (flows < 1 || flows > kFqPieMaxFlows) {
        bad_spec("flow count " + std::to_string(flows) + " out of range [1, " +
                 std::to_string(kFqPieMaxFlows) + "] in qdisc spec '" + spec +
                 "'");
      }
      out.flows = static_cast<int>(flows);
    } else if (spec.size() == 7) {
      bad_spec("qdisc spec '" + spec + "' has an empty parameter list");
    }
    return out;
  }
  bad_spec("unknown qdisc '" + spec + "'");
}

std::unique_ptr<QueueDiscipline> make_queue_discipline(
    const QdiscSpec& spec, std::size_t buffer_packets) {
  switch (spec.kind) {
    case QdiscSpec::Kind::kDropTail:
      return std::make_unique<DropTailQdisc>(buffer_packets);
    case QdiscSpec::Kind::kPie: {
      PieParams params;
      if (spec.target_s > 0.0) params.target_s = spec.target_s;
      if (spec.interval_s > 0.0) params.tupdate_s = spec.interval_s;
      return std::make_unique<PieQdisc>(buffer_packets, params, spec.seed);
    }
    case QdiscSpec::Kind::kFqPie: {
      PieParams params;
      if (spec.target_s > 0.0) params.target_s = spec.target_s;
      if (spec.interval_s > 0.0) params.tupdate_s = spec.interval_s;
      const int flows = spec.flows > 0 ? spec.flows : kFqPieDefaultFlows;
      return std::make_unique<FqPieQdisc>(buffer_packets, flows, params,
                                          spec.seed);
    }
    case QdiscSpec::Kind::kCoDel: {
      CoDelParams params;
      if (spec.target_s > 0.0) params.target_s = spec.target_s;
      if (spec.interval_s > 0.0) params.interval_s = spec.interval_s;
      return std::make_unique<CoDelQdisc>(buffer_packets, params);
    }
  }
  return nullptr;  // unreachable
}

}  // namespace dmp
