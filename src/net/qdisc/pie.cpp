#include "net/qdisc/pie.hpp"

#include <algorithm>

namespace dmp {

PieController::PieController(PieParams params)
    : params_(params), burst_allowance_s_(params.max_burst_s) {}

void PieController::step(double qdelay_s) {
  // RFC 8033 §5.2 auto-scaling: while p is tiny the correction is scaled
  // down so the controller creeps rather than oscillates, ramping to full
  // strength as p grows.
  double p = drop_prob_;
  double factor = 1.0;
  if (p < 1e-6) {
    factor = 1.0 / 2048.0;
  } else if (p < 1e-5) {
    factor = 1.0 / 512.0;
  } else if (p < 1e-4) {
    factor = 1.0 / 128.0;
  } else if (p < 1e-3) {
    factor = 1.0 / 32.0;
  } else if (p < 0.01) {
    factor = 1.0 / 8.0;
  } else if (p < 0.1) {
    factor = 1.0 / 2.0;
  }
  double delta = factor * (params_.alpha * (qdelay_s - params_.target_s) +
                           params_.beta * (qdelay_s - qdelay_old_s_));
  // Cap the per-update ramp once p is already high (RFC 8033 §5.2).
  if (delta > 0.02 && p >= 0.1) delta = 0.02;
  p += delta;
  // Exponential decay toward zero when the queue has fully drained.
  if (qdelay_s == 0.0 && qdelay_old_s_ == 0.0) p *= 0.98;
  drop_prob_ = std::clamp(p, 0.0, 1.0);
  qdelay_old_s_ = qdelay_s;
  if (burst_allowance_s_ > 0.0) {
    burst_allowance_s_ =
        std::max(0.0, burst_allowance_s_ - params_.tupdate_s);
  } else if (drop_prob_ == 0.0 && qdelay_s == 0.0 && qdelay_old_s_ == 0.0) {
    // Idle reset: a fresh burst after a fully quiet period is re-protected.
    burst_allowance_s_ = params_.max_burst_s;
  }
}

PieQdisc::PieQdisc(std::size_t buffer_packets, PieParams params,
                   std::uint64_t seed)
    : buffer_packets_(buffer_packets), controller_(params), rng_(seed) {}

void PieQdisc::advance(SimTime now) {
  const SimTime tupdate = SimTime::seconds(controller_.params().tupdate_s);
  if (!clock_started_) {
    clock_started_ = true;
    next_update_ = now + tupdate;
    return;
  }
  // Lazy stepping: run every tupdate tick the arrival clock has passed.
  // The iteration cap only matters after minutes of total link silence
  // (by which point p has decayed to ~0 anyway) and keeps a pathological
  // gap from stalling the enqueue.
  int steps = 0;
  while (now >= next_update_ && steps < 65536) {
    controller_.step(queue_delay_s());
    next_update_ += tupdate;
    ++steps;
  }
  if (now >= next_update_) next_update_ = now + tupdate;
}

bool PieQdisc::should_early_drop() {
  // RFC 8033 §5.1 safeguards, checked before any randomness so admitted
  // packets consume no RNG state.
  if (controller_.burst_allowance_s() > 0.0) return false;
  const double p = controller_.drop_prob();
  if (p == 0.0) return false;
  if (controller_.qdelay_old_s() < controller_.params().target_s / 2.0 &&
      p < 0.2) {
    return false;
  }
  if (queue_.size() < 2) return false;  // always admit into a near-empty queue
  return rng_.uniform() < p;
}

bool PieQdisc::enqueue(const Packet& p, SimTime now) {
  advance(now);
  if (buffer_packets_ != 0 && queue_.size() >= buffer_packets_) {
    drop(p, QdiscDropReason::kOverlimit);
    return false;
  }
  if (should_early_drop()) {
    drop(p, QdiscDropReason::kEarly);
    return false;
  }
  queue_.push_back(p);
  queued_bytes_ += static_cast<std::uint64_t>(p.size_bytes);
  return true;
}

bool PieQdisc::dequeue(Packet* out, SimTime) {
  if (queue_.empty()) return false;
  *out = queue_.front();
  queue_.pop_front();
  queued_bytes_ -= static_cast<std::uint64_t>(out->size_bytes);
  return true;
}

}  // namespace dmp
