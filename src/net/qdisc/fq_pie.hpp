// FQ-PIE — flow-queueing PIE (RFC 8033 §5.5 style, after Linux fq_pie).
//
// Arrivals hash by flow id into one of `flows` buckets, each with its own
// FIFO and its own PIE controller; a deficit-round-robin scheduler (one
// kDataPacketBytes quantum) serves the active buckets, so a flooding
// background flow cannot starve the video flow sharing the bottleneck —
// the isolation property tests/net/qdisc_test.cpp pins.
//
// Per-bucket queueing delay is the HEAD packet's sojourn time (the
// bucket's drain share is scheduler-dependent, so bytes/rate is
// unknowable per bucket); the controllers step lazily off arrival
// timestamps like plain PIE.  When an arrival finds the aggregate buffer
// full, the HEAD of the longest bucket is discarded (overlimit) to make
// room — the flooding flow pays for the shared buffer it fills, not
// whoever arrives next (the fq_codel discipline).  Early-drop trials
// share one per-link Rng.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/qdisc/pie.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "util/rng.hpp"

namespace dmp {

class FqPieQdisc final : public QueueDiscipline {
 public:
  FqPieQdisc(std::size_t buffer_packets, int flows, PieParams params,
             std::uint64_t seed);

  const char* name() const override { return "fq_pie"; }
  bool enqueue(const Packet& p, SimTime now) override;
  bool dequeue(Packet* out, SimTime now) override;
  std::size_t len() const override { return total_len_; }

  // Exposed for the isolation / DRR tests.
  std::size_t bucket_of(FlowId flow) const;
  std::size_t bucket_len(std::size_t bucket) const {
    return buckets_[bucket].queue.size();
  }

 private:
  struct Entry {
    Packet packet;
    SimTime enqueued;
  };
  struct Bucket {
    std::deque<Entry> queue;
    PieController pie;
    std::int64_t deficit = 0;
    bool active = false;  // currently in the DRR rotation

    explicit Bucket(PieParams params) : pie(params) {}
  };

  void advance(SimTime now);
  double bucket_delay_s(const Bucket& b, SimTime now) const;
  bool should_early_drop(const Bucket& b);
  void drop_from_longest();
  void activate(std::size_t index);

  std::size_t buffer_packets_;
  PieParams params_;
  Rng rng_;
  std::vector<Bucket> buckets_;
  std::deque<std::size_t> active_;  // DRR rotation of active bucket indices
  std::size_t total_len_ = 0;
  bool clock_started_ = false;
  SimTime next_update_ = SimTime::zero();
};

}  // namespace dmp
