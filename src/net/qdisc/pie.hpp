// PIE — Proportional Integral controller Enhanced (RFC 8033).
//
// The controller keeps a drop probability `p` that it nudges every
// `tupdate` toward holding the queueing delay at `target`:
//
//   p += factor * (alpha * (qdelay - target) + beta * (qdelay - qdelay_old))
//
// where `factor` is RFC 8033's auto-scaling table (tiny corrections while
// p is tiny, full-strength ones once p is large), p decays by 0.98 per
// update when the queue has fully drained, and a 150 ms burst allowance
// admits short bursts un-dropped.  Enqueues are admitted or early-dropped
// by a Bernoulli(p) trial, subject to the RFC's safeguards (small queue,
// low delay + low p, unexpired burst allowance).
//
// Determinism: the DES has no background timer, so the controller is
// stepped lazily — each enqueue first advances the update clock to `now`.
// The queueing delay estimate is queued_bytes * 8 / drain_rate (the
// departure-rate estimator of the RFC collapses to this under a
// fixed-rate transmitter).  Early-drop trials draw from a per-link Rng
// seeded by the session (seed_domain kind 18), consumed ONLY when a trial
// actually runs, so droptail and AQM runs share no random state.
#pragma once

#include <cstdint>
#include <deque>

#include "net/qdisc/queue_discipline.hpp"
#include "util/rng.hpp"

namespace dmp {

struct PieParams {
  double target_s = kPieDefaultTargetS;
  double tupdate_s = kPieDefaultTupdateS;
  double alpha = kPieAlpha;
  double beta = kPieBeta;
  double max_burst_s = kPieMaxBurstS;
};

// The drop-probability controller alone, so the differential test can
// hand-step it against the RFC 8033 pseudocode without a queue.
class PieController {
 public:
  explicit PieController(PieParams params);

  // One tupdate tick with the current queueing-delay estimate.
  void step(double qdelay_s);

  double drop_prob() const { return drop_prob_; }
  double qdelay_old_s() const { return qdelay_old_s_; }
  double burst_allowance_s() const { return burst_allowance_s_; }
  const PieParams& params() const { return params_; }

 private:
  PieParams params_;
  double drop_prob_ = 0.0;
  double qdelay_old_s_ = 0.0;
  double burst_allowance_s_;
};

class PieQdisc final : public QueueDiscipline {
 public:
  PieQdisc(std::size_t buffer_packets, PieParams params, std::uint64_t seed);

  const char* name() const override { return "pie"; }
  bool enqueue(const Packet& p, SimTime now) override;
  bool dequeue(Packet* out, SimTime now) override;
  std::size_t len() const override { return queue_.size(); }
  void set_drain_rate(double bps) override { drain_bps_ = bps; }

  // Queueing-delay estimate the controller sees (exposed for tests).
  double queue_delay_s() const {
    return drain_bps_ > 0.0
               ? static_cast<double>(queued_bytes_) * 8.0 / drain_bps_
               : 0.0;
  }
  const PieController& controller() const { return controller_; }

 private:
  void advance(SimTime now);
  bool should_early_drop();

  std::size_t buffer_packets_;
  PieController controller_;
  Rng rng_;
  std::deque<Packet> queue_;
  std::uint64_t queued_bytes_ = 0;
  double drain_bps_ = 0.0;
  bool clock_started_ = false;
  SimTime next_update_ = SimTime::zero();
};

}  // namespace dmp
