#include "net/qdisc/fq_pie.hpp"

namespace dmp {

namespace {

// SplitMix64 finalizer: spreads adjacent flow ids (video flows are 0..K-1,
// background flows 1000, 1001, ...) across the bucket space.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

FqPieQdisc::FqPieQdisc(std::size_t buffer_packets, int flows,
                       PieParams params, std::uint64_t seed)
    : buffer_packets_(buffer_packets), params_(params), rng_(seed) {
  buckets_.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) buckets_.emplace_back(params_);
}

std::size_t FqPieQdisc::bucket_of(FlowId flow) const {
  return static_cast<std::size_t>(mix(flow) % buckets_.size());
}

double FqPieQdisc::bucket_delay_s(const Bucket& b, SimTime now) const {
  if (b.queue.empty()) return 0.0;
  return (now - b.queue.front().enqueued).to_seconds();
}

void FqPieQdisc::advance(SimTime now) {
  const SimTime tupdate = SimTime::seconds(params_.tupdate_s);
  if (!clock_started_) {
    clock_started_ = true;
    next_update_ = now + tupdate;
    return;
  }
  int steps = 0;
  while (now >= next_update_ && steps < 65536) {
    // Step every bucket on the shared tupdate clock; the qdelay each
    // controller sees is its own head sojourn at the tick instant.
    for (auto& b : buckets_) b.pie.step(bucket_delay_s(b, next_update_));
    next_update_ += tupdate;
    ++steps;
  }
  if (now >= next_update_) next_update_ = now + tupdate;
}

bool FqPieQdisc::should_early_drop(const Bucket& b) {
  if (b.pie.burst_allowance_s() > 0.0) return false;
  const double p = b.pie.drop_prob();
  if (p == 0.0) return false;
  if (b.pie.qdelay_old_s() < params_.target_s / 2.0 && p < 0.2) return false;
  if (b.queue.size() < 2) return false;
  return rng_.uniform() < p;
}

void FqPieQdisc::activate(std::size_t index) {
  Bucket& b = buckets_[index];
  if (b.active) return;
  b.active = true;
  b.deficit = static_cast<std::int64_t>(kDataPacketBytes);
  active_.push_back(index);
}

void FqPieQdisc::drop_from_longest() {
  std::size_t victim = 0;
  std::size_t longest = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].queue.size() > longest) {
      longest = buckets_[i].queue.size();
      victim = i;
    }
  }
  if (longest == 0) return;
  Bucket& b = buckets_[victim];
  const Packet head = b.queue.front().packet;
  b.queue.pop_front();
  --total_len_;
  drop(head, QdiscDropReason::kOverlimit);
}

bool FqPieQdisc::enqueue(const Packet& p, SimTime now) {
  advance(now);
  const std::size_t index = bucket_of(p.flow);
  Bucket& b = buckets_[index];
  if (should_early_drop(b)) {
    drop(p, QdiscDropReason::kEarly);
    return false;
  }
  // Overlimit: make room BEFORE admitting, so the victim is always an
  // already-queued head (never the arrival) and the Link's enqueue/drop
  // trace events stay coherent per packet.
  if (buffer_packets_ != 0 && total_len_ >= buffer_packets_) {
    drop_from_longest();
  }
  b.queue.push_back({p, now});
  ++total_len_;
  activate(index);
  return true;
}

bool FqPieQdisc::dequeue(Packet* out, SimTime) {
  while (!active_.empty()) {
    const std::size_t index = active_.front();
    Bucket& b = buckets_[index];
    if (b.queue.empty()) {
      b.active = false;
      active_.pop_front();
      continue;
    }
    if (b.deficit <= 0) {
      b.deficit += static_cast<std::int64_t>(kDataPacketBytes);
      active_.pop_front();
      active_.push_back(index);
      continue;
    }
    const Entry head = b.queue.front();
    b.queue.pop_front();
    --total_len_;
    b.deficit -= static_cast<std::int64_t>(head.packet.size_bytes);
    *out = head.packet;
    return true;
  }
  return false;
}

}  // namespace dmp
