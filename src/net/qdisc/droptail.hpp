// DropTail behind the QueueDiscipline interface: the legacy Link::send
// admit/drop decision, verbatim.  Tail-drops when the buffer is full,
// otherwise FIFO; no controller state, no RNG — the default configuration
// stays byte-identical to the pre-interface link (golden-pinned).
#pragma once

#include <deque>

#include "net/qdisc/queue_discipline.hpp"

namespace dmp {

class DropTailQdisc final : public QueueDiscipline {
 public:
  explicit DropTailQdisc(std::size_t buffer_packets)
      : buffer_packets_(buffer_packets) {}

  const char* name() const override { return "droptail"; }

  bool enqueue(const Packet& p, SimTime) override {
    if (buffer_packets_ != 0 && queue_.size() >= buffer_packets_) {
      drop(p, QdiscDropReason::kOverlimit);
      return false;
    }
    queue_.push_back(p);
    return true;
  }

  bool dequeue(Packet* out, SimTime) override {
    if (queue_.empty()) return false;
    *out = queue_.front();
    queue_.pop_front();
    return true;
  }

  std::size_t len() const override { return queue_.size(); }

 private:
  std::size_t buffer_packets_;
  std::deque<Packet> queue_;
};

}  // namespace dmp
