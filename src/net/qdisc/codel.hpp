// CoDel — Controlled Delay (RFC 8289).
//
// Each packet is stamped on enqueue; at dequeue its sojourn time is
// compared to `target` (5 ms).  Once the sojourn has stayed above target
// for a full `interval` (100 ms) the qdisc enters the dropping state and
// discards heads at instants spaced by interval / sqrt(count), leaving the
// state as soon as a head's sojourn dips below target (or the backlog
// empties).  Re-entering shortly after leaving resumes from the previous
// drop rate instead of restarting from 1.
//
// CoDel is fully deterministic — no RNG, no timers: all state advances at
// enqueue/dequeue instants, so DES runs are a pure function of the
// arrival sequence.  Drops happen at DEQUEUE (the head is discarded and
// the next packet considered), which is why the Link must treat a false
// dequeue() as "nothing to send" even when packets were queued a moment
// earlier.
#pragma once

#include <cstdint>
#include <deque>

#include "net/qdisc/queue_discipline.hpp"

namespace dmp {

struct CoDelParams {
  double target_s = kCoDelDefaultTargetS;
  double interval_s = kCoDelDefaultIntervalS;
};

class CoDelQdisc final : public QueueDiscipline {
 public:
  CoDelQdisc(std::size_t buffer_packets, CoDelParams params);

  const char* name() const override { return "codel"; }
  bool enqueue(const Packet& p, SimTime now) override;
  bool dequeue(Packet* out, SimTime now) override;
  std::size_t len() const override { return queue_.size(); }

  // Control-law state, exposed for the state-machine test.
  bool dropping() const { return dropping_; }
  std::uint32_t drop_count() const { return count_; }
  SimTime drop_next() const { return drop_next_; }

 private:
  struct Entry {
    Packet packet;
    SimTime enqueued;
  };

  // RFC 8289 dodeque(): pops the head and decides whether the dropping
  // condition holds at `now`.  Returns false when the queue is empty.
  bool pop_head(SimTime now, Packet* out, bool* ok_to_drop);
  SimTime control_law(SimTime t) const;

  std::size_t buffer_packets_;
  CoDelParams params_;
  std::deque<Entry> queue_;

  bool dropping_ = false;
  bool has_first_above_ = false;
  SimTime first_above_ = SimTime::zero();
  SimTime drop_next_ = SimTime::zero();
  std::uint32_t count_ = 0;
  std::uint32_t lastcount_ = 0;
};

}  // namespace dmp
