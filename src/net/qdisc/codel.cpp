#include "net/qdisc/codel.hpp"

#include <cmath>

namespace dmp {

CoDelQdisc::CoDelQdisc(std::size_t buffer_packets, CoDelParams params)
    : buffer_packets_(buffer_packets), params_(params) {}

SimTime CoDelQdisc::control_law(SimTime t) const {
  return t + SimTime::seconds(params_.interval_s /
                              std::sqrt(static_cast<double>(count_)));
}

bool CoDelQdisc::pop_head(SimTime now, Packet* out, bool* ok_to_drop) {
  if (queue_.empty()) {
    has_first_above_ = false;
    return false;
  }
  const Entry head = queue_.front();
  queue_.pop_front();
  *out = head.packet;
  const double sojourn_s = (now - head.enqueued).to_seconds();
  if (sojourn_s < params_.target_s || queue_.empty()) {
    // Back below target (or backlog gone): leave/stay out of the above-
    // target tracking.
    has_first_above_ = false;
    *ok_to_drop = false;
  } else if (!has_first_above_) {
    // First sojourn above target: arm the interval timer; only if the
    // excursion outlasts a full interval does dropping become OK.
    has_first_above_ = true;
    first_above_ = now + SimTime::seconds(params_.interval_s);
    *ok_to_drop = false;
  } else {
    *ok_to_drop = now >= first_above_;
  }
  return true;
}

bool CoDelQdisc::enqueue(const Packet& p, SimTime now) {
  if (buffer_packets_ != 0 && queue_.size() >= buffer_packets_) {
    drop(p, QdiscDropReason::kOverlimit);
    return false;
  }
  queue_.push_back({p, now});
  return true;
}

bool CoDelQdisc::dequeue(Packet* out, SimTime now) {
  bool ok_to_drop = false;
  if (!pop_head(now, out, &ok_to_drop)) {
    dropping_ = false;
    return false;
  }
  if (dropping_) {
    if (!ok_to_drop) {
      dropping_ = false;
    } else {
      // Discard heads at the control-law instants until one is under
      // target (or the schedule catches up with `now`).
      while (dropping_ && now >= drop_next_) {
        ++count_;
        drop(*out, QdiscDropReason::kEarly);
        if (!pop_head(now, out, &ok_to_drop)) {
          dropping_ = false;
          return false;
        }
        if (!ok_to_drop) {
          dropping_ = false;
        } else {
          drop_next_ = control_law(drop_next_);
        }
      }
    }
  } else if (ok_to_drop) {
    // Enter the dropping state: this head is the first casualty, and the
    // next packet out rides normally.
    drop(*out, QdiscDropReason::kEarly);
    const bool again = pop_head(now, out, &ok_to_drop);
    dropping_ = true;
    // Resume from the previous rate when re-entering soon after leaving.
    const std::uint32_t delta = count_ - lastcount_;
    count_ = (delta > 1 &&
              (now - drop_next_).to_seconds() < 16.0 * params_.interval_s)
                 ? delta
                 : 1;
    drop_next_ = control_law(now);
    lastcount_ = count_;
    if (!again) {
      dropping_ = false;
      return false;
    }
  }
  return true;
}

}  // namespace dmp
