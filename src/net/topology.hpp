// The paper's validation topologies (Figs. 3 and 6) as a reusable building
// block: a "dumbbell path" — per-flow access links feeding one shared
// drop-tail bottleneck, an exit access link, and an uncongested reverse
// direction for ACKs.
//
//   source --[access 100Mbps/10ms]--> (bottleneck: Table-1 config) --
//     --[access 100Mbps/10ms]--> sink
//   sink   --[reverse, same delays, 100 Mbps]--> source
//
// Independent paths (Fig. 3) = two DumbbellPath instances.
// Correlated paths (Fig. 6)  = both video flows attached to one instance.
#pragma once

#include <memory>
#include <vector>

#include "net/demux.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/path_interface.hpp"
#include "sim/scheduler.hpp"

namespace dmp {

// Bottleneck-link parameters (rows of the paper's Table 1 fill these in).
struct BottleneckConfig {
  double bandwidth_bps = 3.7e6;
  SimTime prop_delay = SimTime::millis(40);
  std::size_t buffer_packets = 50;
  // Queue discipline at the bottleneck (default drop-tail).  Access and
  // reverse links always stay droptail-unbounded: they never congest, so
  // AQM there would be dead state.
  QdiscSpec qdisc{};
};

struct AccessConfig {
  double bandwidth_bps = 100e6;
  SimTime prop_delay = SimTime::millis(10);
};

class DumbbellPath final : public NetworkPath {
 public:
  DumbbellPath(Scheduler& sched, BottleneckConfig bottleneck,
               AccessConfig access = {});

  // --- forward direction (data) ---
  // Creates this flow's private access link into the shared bottleneck and
  // returns the handler the source injects packets into.
  PacketHandler attach_source(FlowId flow) override;
  // Registers the receiver of this flow's data at the far end.
  void register_sink(FlowId flow, PacketHandler handler) override;

  // --- reverse direction (ACKs) ---
  PacketHandler attach_reverse_source(FlowId flow) override;
  void register_reverse_sink(FlowId flow, PacketHandler handler) override;

  // Measurement hooks.
  const Link& bottleneck() const { return *bottleneck_; }
  Link& bottleneck() { return *bottleneck_; }
  // Attaches a flight recorder to every forward link: hop 0 = per-flow
  // entry access link (including ones attached later), hop 1 = shared
  // bottleneck, hop 2 = exit access link.  Reverse (ACK) links carry no
  // stream packets and are left untouched.  Optional; a no-op when never
  // called.
  void set_flight_recorder(obs::FlightRecorder* recorder);
  // Base (zero-queueing) round-trip propagation+transmission latency in
  // seconds for a data packet + returning ACK; diagnostics only.
  double base_rtt_seconds() const;

  // --- fault hooks (src/fault/) ---
  // Downs/raises the whole path: forward bottleneck AND reverse (ACK)
  // bottleneck, so a blackhole kills data and acknowledgments alike — the
  // sender's only signal is its retransmission timer, as with a real
  // outage.
  void set_path_down(bool down);
  bool path_down() const { return bottleneck_->down(); }
  // Burst loss / parameter rescale act on the forward bottleneck (the
  // congested element the paper's Table-1 rows describe).
  void drop_next(std::uint64_t count) { bottleneck_->drop_next(count); }
  void rescale(double bw_factor, double delay_factor) {
    bottleneck_->rescale(bw_factor, delay_factor);
  }

 private:
  Scheduler& sched_;
  AccessConfig access_;
  BottleneckConfig bottleneck_cfg_;

  std::unique_ptr<Link> bottleneck_;
  std::unique_ptr<Link> exit_;
  FlowDemux fwd_demux_;
  std::vector<std::unique_ptr<Link>> entry_links_;

  std::unique_ptr<Link> rev_bottleneck_;
  std::unique_ptr<Link> rev_exit_;
  FlowDemux rev_demux_;
  std::vector<std::unique_ptr<Link>> rev_entry_links_;

  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace dmp
