// Per-flow demultiplexer: routes packets leaving a shared pipeline stage to
// the endpoint (TCP sender or sink) registered for their flow id.
//
// Storage is a flat vector scanned linearly: a pipeline stage serves a
// handful of flows (two video flows plus a few background ids), where a
// scan over 8-byte keys beats unordered_map's hash + bucket chase on every
// delivered packet.  Registration replaces an existing entry, preserving
// the old map semantics.
#pragma once

#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace dmp {

class FlowDemux {
 public:
  void register_flow(FlowId flow, PacketHandler handler) {
    for (auto& entry : handlers_) {
      if (entry.first == flow) {
        entry.second = std::move(handler);
        return;
      }
    }
    handlers_.emplace_back(flow, std::move(handler));
  }

  void deliver(const Packet& p) const {
    for (const auto& entry : handlers_) {
      if (entry.first == p.flow) {
        entry.second(p);
        return;
      }
    }
    // Packets for unregistered flows are silently discarded (e.g. traffic
    // arriving after an endpoint was torn down).
  }

  PacketHandler as_handler() {
    return [this](const Packet& p) { deliver(p); };
  }

 private:
  std::vector<std::pair<FlowId, PacketHandler>> handlers_;
};

}  // namespace dmp
