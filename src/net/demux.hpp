// Per-flow demultiplexer: routes packets leaving a shared pipeline stage to
// the endpoint (TCP sender or sink) registered for their flow id.
#pragma once

#include <unordered_map>

#include "net/packet.hpp"

namespace dmp {

class FlowDemux {
 public:
  void register_flow(FlowId flow, PacketHandler handler) {
    handlers_[flow] = std::move(handler);
  }

  void deliver(const Packet& p) const {
    const auto it = handlers_.find(p.flow);
    if (it != handlers_.end()) it->second(p);
    // Packets for unregistered flows are silently discarded (e.g. traffic
    // arriving after an endpoint was torn down).
  }

  PacketHandler as_handler() {
    return [this](const Packet& p) { deliver(p); };
  }

 private:
  std::unordered_map<FlowId, PacketHandler> handlers_;
};

}  // namespace dmp
