#include "net/topology.hpp"

namespace dmp {

DumbbellPath::DumbbellPath(Scheduler& sched, BottleneckConfig bottleneck,
                           AccessConfig access)
    : sched_(sched), access_(access), bottleneck_cfg_(bottleneck) {
  // Forward: shared bottleneck -> exit access link -> per-flow demux.
  bottleneck_ = std::make_unique<Link>(
      sched_, LinkConfig{bottleneck.bandwidth_bps, bottleneck.prop_delay,
                         bottleneck.buffer_packets, bottleneck.qdisc});
  exit_ = std::make_unique<Link>(
      sched_, LinkConfig{access_.bandwidth_bps, access_.prop_delay, 0});
  // Devirtualized hops: each stage hands packets to the next Link / demux
  // directly instead of through a std::function trampoline.
  bottleneck_->set_receiver(exit_.get());
  exit_->set_receiver(&fwd_demux_);

  // Reverse: ACK path shares the bottleneck's propagation delay but is
  // provisioned at access speed, so it never congests (ACK losses are
  // negligible, matching the model's assumption).
  rev_bottleneck_ = std::make_unique<Link>(
      sched_, LinkConfig{access_.bandwidth_bps, bottleneck.prop_delay, 0});
  rev_exit_ = std::make_unique<Link>(
      sched_, LinkConfig{access_.bandwidth_bps, access_.prop_delay, 0});
  rev_bottleneck_->set_receiver(rev_exit_.get());
  rev_exit_->set_receiver(&rev_demux_);
}

PacketHandler DumbbellPath::attach_source(FlowId) {
  auto entry = std::make_unique<Link>(
      sched_, LinkConfig{access_.bandwidth_bps, access_.prop_delay, 0});
  entry->set_receiver(bottleneck_.get());
  if (flight_) entry->set_flight_recorder(flight_, 0);
  Link* raw = entry.get();
  entry_links_.push_back(std::move(entry));
  return [raw](const Packet& p) { raw->send(p); };
}

void DumbbellPath::set_flight_recorder(obs::FlightRecorder* recorder) {
  flight_ = recorder;
  for (auto& entry : entry_links_) entry->set_flight_recorder(recorder, 0);
  bottleneck_->set_flight_recorder(recorder, 1);
  exit_->set_flight_recorder(recorder, 2);
}

void DumbbellPath::register_sink(FlowId flow, PacketHandler handler) {
  fwd_demux_.register_flow(flow, std::move(handler));
}

PacketHandler DumbbellPath::attach_reverse_source(FlowId) {
  auto entry = std::make_unique<Link>(
      sched_, LinkConfig{access_.bandwidth_bps, access_.prop_delay, 0});
  entry->set_receiver(rev_bottleneck_.get());
  Link* raw = entry.get();
  rev_entry_links_.push_back(std::move(entry));
  return [raw](const Packet& p) { raw->send(p); };
}

void DumbbellPath::register_reverse_sink(FlowId flow, PacketHandler handler) {
  rev_demux_.register_flow(flow, std::move(handler));
}

void DumbbellPath::set_path_down(bool down) {
  bottleneck_->set_down(down);
  rev_bottleneck_->set_down(down);
}

double DumbbellPath::base_rtt_seconds() const {
  const double fwd_prop =
      2.0 * access_.prop_delay.to_seconds() +
      bottleneck_cfg_.prop_delay.to_seconds();
  const double rev_prop = fwd_prop;
  const double data_tx =
      static_cast<double>(kDataPacketBytes) * 8.0 /
          bottleneck_cfg_.bandwidth_bps +
      2.0 * static_cast<double>(kDataPacketBytes) * 8.0 / access_.bandwidth_bps;
  const double ack_tx =
      3.0 * static_cast<double>(kAckPacketBytes) * 8.0 / access_.bandwidth_bps;
  return fwd_prop + rev_prop + data_tx + ack_tx;
}

}  // namespace dmp
