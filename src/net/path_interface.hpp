// Abstract bidirectional path: the wiring contract between TCP endpoints
// and a network substrate.  Implemented by DumbbellPath (Table-1 bottleneck
// with background traffic) and emul::WanPath (stochastic Internet-path
// emulation for the Section-6 experiments).
#pragma once

#include "net/packet.hpp"

namespace dmp {

class NetworkPath {
 public:
  virtual ~NetworkPath() = default;

  // Forward direction (data): returns the injection handler for this flow
  // and registers who receives its packets at the far end.
  virtual PacketHandler attach_source(FlowId flow) = 0;
  virtual void register_sink(FlowId flow, PacketHandler handler) = 0;

  // Reverse direction (ACKs).
  virtual PacketHandler attach_reverse_source(FlowId flow) = 0;
  virtual void register_reverse_sink(FlowId flow, PacketHandler handler) = 0;
};

}  // namespace dmp
