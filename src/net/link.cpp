#include "net/link.hpp"

#include <stdexcept>

namespace dmp {

Link::Link(Scheduler& sched, LinkConfig config)
    : sched_(sched),
      config_(config),
      base_config_(config),
      qdisc_(make_queue_discipline(config.qdisc, config.buffer_packets)),
      aqm_(!config.qdisc.droptail()) {
  if (config_.bandwidth_bps <= 0) {
    throw std::invalid_argument{"link bandwidth must be positive"};
  }
  qdisc_->set_drain_rate(config_.bandwidth_bps);
  qdisc_->set_drop_handler([this](const Packet& victim,
                                  QdiscDropReason reason) {
    on_qdisc_drop(victim, reason);
  });
}

void Link::record_flight(const Packet& p, obs::FlightEventKind kind,
                         std::size_t queue_depth, obs::DropCause cause) {
  obs::FlightEvent e;
  e.t_ns = sched_.now().ns();
  e.kind = kind;
  e.packet = p.app_tag;
  e.path = static_cast<std::int32_t>(p.flow);
  e.hop = flight_hop_;
  e.seq = p.seq;
  e.queue = static_cast<std::int64_t>(queue_depth);
  e.drop = cause;
  flight_->record(e);
}

// Every congestion discard — the arriving packet on a full/early-dropping
// queue, a different victim (FQ-PIE overlimit) or a queued head (CoDel) —
// funnels through here, so counters, metrics, the event log and the flight
// recorder see AQM drops exactly the way they saw drop-tail ones.  The
// drop-cause annotations are gated on `aqm_`: a droptail link's artifacts
// stay byte-identical to the pre-qdisc implementation.
void Link::on_qdisc_drop(const Packet& victim, QdiscDropReason reason) {
  ++total_drops_;
  ++per_flow_[victim.flow].drops;
  if (m_drops_) m_drops_->inc();
  if (m_early_drops_ && reason == QdiscDropReason::kEarly) {
    m_early_drops_->inc();
  }
  if (ts_drops_) ts_drops_->bump(sched_.now());
  if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
    if (aqm_) {
      event_log_->record(
          sched_.now().to_seconds(), obs::Severity::kWarn, "drop",
          {obs::EventField::num("flow", victim.flow),
           obs::EventField::num("seq", victim.seq),
           obs::EventField::num("queue", qdisc_->len()),
           obs::EventField::text("cause",
                                 std::string(qdisc_drop_reason_name(reason)))});
    } else {
      event_log_->record(sched_.now().to_seconds(), obs::Severity::kWarn,
                         "drop",
                         {obs::EventField::num("flow", victim.flow),
                          obs::EventField::num("seq", victim.seq),
                          obs::EventField::num("queue", qdisc_->len())});
    }
  }
  if (flight_ && victim.app_tag >= 0) {
    record_flight(victim, obs::FlightEventKind::kLinkDrop, qdisc_->len(),
                  aqm_ ? (reason == QdiscDropReason::kEarly
                              ? obs::DropCause::kEarly
                              : obs::DropCause::kOverlimit)
                       : obs::DropCause::kNone);
  }
}

void Link::send(const Packet& p) {
  ++total_arrivals_;
  if (m_arrivals_) m_arrivals_->inc();
  ++per_flow_[p.flow].arrivals;

  // Injected faults discard on arrival.  These are not congestion drops:
  // they bypass the qdisc (and its counters) entirely so the measured p_k
  // keeps meaning "congestion loss", and are tallied in fault_drops_
  // instead — fault_drops() stays disjoint from total_drops() under every
  // discipline.
  if (down_ || burst_remaining_ > 0) {
    if (!down_) --burst_remaining_;
    ++fault_drops_;
    if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
      event_log_->record(sched_.now().to_seconds(), obs::Severity::kWarn,
                         "fault_drop",
                         {obs::EventField::num("flow", p.flow),
                          obs::EventField::num("seq", p.seq),
                          obs::EventField::num("down", down_ ? 1 : 0)});
    }
    if (flight_ && p.app_tag >= 0) {
      record_flight(p, obs::FlightEventKind::kLinkDrop, qdisc_->len());
    }
    return;
  }

  // Idle bypass: an empty queue and a free transmitter put the packet
  // straight on the wire — no discipline consulted, exactly like the
  // pre-qdisc link (AQM only shapes a standing queue).
  if (!transmitting_ && qdisc_->len() == 0) {
    if (flight_ && p.app_tag >= 0) {
      record_flight(p, obs::FlightEventKind::kLinkEnqueue, 0);
    }
    start_transmission(p);
    return;
  }

  const std::size_t depth = qdisc_->len();
  if (!qdisc_->enqueue(p, sched_.now())) return;  // dropped + reported
  if (flight_ && p.app_tag >= 0) {
    // Pre-push depth, matching the legacy record-before-enqueue order.
    record_flight(p, obs::FlightEventKind::kLinkEnqueue, depth);
  }
  if (ts_queue_) {
    ts_queue_->add(sched_.now(), static_cast<double>(qdisc_->len()));
  }
}

void Link::start_transmission(const Packet& p) {
  if (flight_ && p.app_tag >= 0) {
    record_flight(p, obs::FlightEventKind::kLinkDequeue, qdisc_->len());
  }
  transmitting_ = true;
  in_flight_ = p;
  const SimTime tx = transmission_time(p.size_bytes, config_.bandwidth_bps);
  busy_time_ += tx;
  sched_.post_after(tx, [this] { on_transmit_done(); },
                    EventCategory::kLinkTx);
}

void Link::on_transmit_done() {
  // Propagation is pipelined: delivery is scheduled and the transmitter is
  // immediately free for the next queued packet.
  const Packet delivered = in_flight_;
  ++total_delivered_;
  if (m_delivered_) m_delivered_->inc();
  if (ts_delivered_) ts_delivered_->bump(sched_.now());
  sched_.post_after(config_.prop_delay, [this, delivered] {
    if (receiver_) receiver_(delivered);
  }, EventCategory::kLinkDelivery);
  transmitting_ = false;
  // A downed link freezes its queue: the packet already on the wire
  // completes, but nothing further dequeues until set_down(false).  CoDel
  // may discard queued heads here and come back empty-handed.
  if (!down_) {
    Packet next;
    if (qdisc_->dequeue(&next, sched_.now())) {
      start_transmission(next);
      if (ts_queue_) {
        ts_queue_->add(sched_.now(), static_cast<double>(qdisc_->len()));
      }
    }
  }
}

void Link::set_down(bool down) {
  down_ = down;
  if (!down_ && !transmitting_) {
    Packet next;
    if (qdisc_->dequeue(&next, sched_.now())) start_transmission(next);
  }
}

void Link::rescale(double bw_factor, double delay_factor) {
  if (!(bw_factor > 0.0) || !(delay_factor > 0.0)) {
    throw std::invalid_argument{"link rescale factors must be positive"};
  }
  config_.bandwidth_bps = base_config_.bandwidth_bps * bw_factor;
  config_.prop_delay = SimTime::nanos(static_cast<std::int64_t>(
      static_cast<double>(base_config_.prop_delay.ns()) * delay_factor));
  // PIE's queue-delay estimate tracks the rescaled drain rate.
  qdisc_->set_drain_rate(config_.bandwidth_bps);
}

LinkFlowCounters Link::flow_counters(FlowId flow) const {
  const auto it = per_flow_.find(flow);
  return it == per_flow_.end() ? LinkFlowCounters{} : it->second;
}

void Link::attach_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix) {
  m_arrivals_ = &registry.counter(prefix + ".arrivals");
  m_drops_ = &registry.counter(prefix + ".drops");
  m_delivered_ = &registry.counter(prefix + ".delivered");
  if (aqm_) m_early_drops_ = &registry.counter(prefix + ".early_drops");
  registry.gauge(prefix + ".queue_depth")
      .set_sampler([this] { return static_cast<double>(qdisc_->len()); });
}

double Link::utilization(SimTime elapsed) const {
  if (elapsed.ns() <= 0) return 0.0;
  return busy_time_.to_seconds() / elapsed.to_seconds();
}

}  // namespace dmp
