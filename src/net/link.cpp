#include "net/link.hpp"

#include <stdexcept>

namespace dmp {

Link::Link(Scheduler& sched, LinkConfig config)
    : sched_(sched), config_(config), base_config_(config) {
  if (config_.bandwidth_bps <= 0) {
    throw std::invalid_argument{"link bandwidth must be positive"};
  }
}

void Link::record_flight(const Packet& p, obs::FlightEventKind kind) {
  obs::FlightEvent e;
  e.t_ns = sched_.now().ns();
  e.kind = kind;
  e.packet = p.app_tag;
  e.path = static_cast<std::int32_t>(p.flow);
  e.hop = flight_hop_;
  e.seq = p.seq;
  e.queue = static_cast<std::int64_t>(queue_.size());
  flight_->record(e);
}

void Link::send(const Packet& p) {
  ++total_arrivals_;
  if (m_arrivals_) m_arrivals_->inc();
  auto& fc = per_flow_[p.flow];
  ++fc.arrivals;

  // Injected faults discard on arrival.  These are not congestion drops:
  // they bypass the per-flow/total drop counters so the measured p_k keeps
  // meaning "drop-tail loss", and are tallied in fault_drops_ instead.
  if (down_ || burst_remaining_ > 0) {
    if (!down_) --burst_remaining_;
    ++fault_drops_;
    if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
      event_log_->record(sched_.now().to_seconds(), obs::Severity::kWarn,
                         "fault_drop",
                         {obs::EventField::num("flow", p.flow),
                          obs::EventField::num("seq", p.seq),
                          obs::EventField::num("down", down_ ? 1 : 0)});
    }
    if (flight_ && p.app_tag >= 0) {
      record_flight(p, obs::FlightEventKind::kLinkDrop);
    }
    return;
  }

  if (!transmitting_ && queue_.empty()) {
    if (flight_ && p.app_tag >= 0) {
      record_flight(p, obs::FlightEventKind::kLinkEnqueue);
    }
    start_transmission(p);
    return;
  }
  if (config_.buffer_packets != 0 && queue_.size() >= config_.buffer_packets) {
    ++total_drops_;
    ++fc.drops;
    if (m_drops_) m_drops_->inc();
    if (ts_drops_) ts_drops_->bump(sched_.now());
    if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
      event_log_->record(sched_.now().to_seconds(), obs::Severity::kWarn,
                         "drop",
                         {obs::EventField::num("flow", p.flow),
                          obs::EventField::num("seq", p.seq),
                          obs::EventField::num("queue", queue_.size())});
    }
    if (flight_ && p.app_tag >= 0) {
      record_flight(p, obs::FlightEventKind::kLinkDrop);
    }
    return;
  }
  if (flight_ && p.app_tag >= 0) {
    record_flight(p, obs::FlightEventKind::kLinkEnqueue);
  }
  queue_.push_back(p);
  if (ts_queue_) ts_queue_->add(sched_.now(), static_cast<double>(queue_.size()));
}

void Link::start_transmission(const Packet& p) {
  if (flight_ && p.app_tag >= 0) {
    record_flight(p, obs::FlightEventKind::kLinkDequeue);
  }
  transmitting_ = true;
  in_flight_ = p;
  const SimTime tx = transmission_time(p.size_bytes, config_.bandwidth_bps);
  busy_time_ += tx;
  sched_.post_after(tx, [this] { on_transmit_done(); },
                    EventCategory::kLinkTx);
}

void Link::on_transmit_done() {
  // Propagation is pipelined: delivery is scheduled and the transmitter is
  // immediately free for the next queued packet.
  const Packet delivered = in_flight_;
  ++total_delivered_;
  if (m_delivered_) m_delivered_->inc();
  if (ts_delivered_) ts_delivered_->bump(sched_.now());
  sched_.post_after(config_.prop_delay, [this, delivered] {
    if (receiver_) receiver_(delivered);
  }, EventCategory::kLinkDelivery);
  transmitting_ = false;
  // A downed link freezes its queue: the packet already on the wire
  // completes, but nothing further dequeues until set_down(false).
  if (!down_ && !queue_.empty()) {
    const Packet next = queue_.front();
    queue_.pop_front();
    start_transmission(next);
    if (ts_queue_) {
      ts_queue_->add(sched_.now(), static_cast<double>(queue_.size()));
    }
  }
}

void Link::set_down(bool down) {
  down_ = down;
  if (!down_ && !transmitting_ && !queue_.empty()) {
    const Packet next = queue_.front();
    queue_.pop_front();
    start_transmission(next);
  }
}

void Link::rescale(double bw_factor, double delay_factor) {
  if (!(bw_factor > 0.0) || !(delay_factor > 0.0)) {
    throw std::invalid_argument{"link rescale factors must be positive"};
  }
  config_.bandwidth_bps = base_config_.bandwidth_bps * bw_factor;
  config_.prop_delay = SimTime::nanos(static_cast<std::int64_t>(
      static_cast<double>(base_config_.prop_delay.ns()) * delay_factor));
}

LinkFlowCounters Link::flow_counters(FlowId flow) const {
  const auto it = per_flow_.find(flow);
  return it == per_flow_.end() ? LinkFlowCounters{} : it->second;
}

void Link::attach_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix) {
  m_arrivals_ = &registry.counter(prefix + ".arrivals");
  m_drops_ = &registry.counter(prefix + ".drops");
  m_delivered_ = &registry.counter(prefix + ".delivered");
  registry.gauge(prefix + ".queue_depth")
      .set_sampler([this] { return static_cast<double>(queue_.size()); });
}

double Link::utilization(SimTime elapsed) const {
  if (elapsed.ns() <= 0) return 0.0;
  return busy_time_.to_seconds() / elapsed.to_seconds();
}

}  // namespace dmp
