#include "net/link.hpp"

#include <stdexcept>

namespace dmp {

Link::Link(Scheduler& sched, LinkConfig config)
    : sched_(sched),
      config_(config),
      base_config_(config),
      qdisc_(make_queue_discipline(config.qdisc, config.buffer_packets)),
      aqm_(!config.qdisc.droptail()) {
  if (!aqm_) droptail_ = static_cast<DropTailQdisc*>(qdisc_.get());
  if (config_.bandwidth_bps <= 0) {
    throw std::invalid_argument{"link bandwidth must be positive"};
  }
  qdisc_->set_drain_rate(config_.bandwidth_bps);
  qdisc_->set_drop_handler([this](const Packet& victim,
                                  QdiscDropReason reason) {
    on_qdisc_drop(victim, reason);
  });
  // Devirtualized dispatch for the two event kinds this link fires; both
  // skip the scheduler's callable slab entirely.
  tx_done_port_id_ =
      sched_.register_port(&Link::tx_done_port, this, EventCategory::kLinkTx);
  delivery_port_id_ = sched_.register_port(&Link::delivery_port, this,
                                           EventCategory::kLinkDelivery);
}

LinkFlowCounters& Link::flow_slot(FlowId flow) {
  if (flow_hint_ < per_flow_.size() && per_flow_[flow_hint_].first == flow) {
    return per_flow_[flow_hint_].second;
  }
  for (std::size_t i = 0; i < per_flow_.size(); ++i) {
    if (per_flow_[i].first == flow) {
      flow_hint_ = i;
      return per_flow_[i].second;
    }
  }
  flow_hint_ = per_flow_.size();
  per_flow_.emplace_back(flow, LinkFlowCounters{});
  return per_flow_.back().second;
}

void Link::record_flight(const Packet& p, obs::FlightEventKind kind,
                         std::size_t queue_depth, obs::DropCause cause) {
  obs::FlightEvent e;
  e.t_ns = sched_.now().ns();
  e.kind = kind;
  e.packet = p.app_tag;
  e.path = static_cast<std::int32_t>(p.flow);
  e.hop = flight_hop_;
  e.seq = p.seq;
  e.queue = static_cast<std::int64_t>(queue_depth);
  e.drop = cause;
  flight_->record(e);
}

// Every congestion discard — the arriving packet on a full/early-dropping
// queue, a different victim (FQ-PIE overlimit) or a queued head (CoDel) —
// funnels through here, so counters, metrics, the event log and the flight
// recorder see AQM drops exactly the way they saw drop-tail ones.  The
// drop-cause annotations are gated on `aqm_`: a droptail link's artifacts
// stay byte-identical to the pre-qdisc implementation.
void Link::on_qdisc_drop(const Packet& victim, QdiscDropReason reason) {
  ++total_drops_;
  ++flow_slot(victim.flow).drops;
  if (m_drops_) m_drops_->inc();
  if (m_early_drops_ && reason == QdiscDropReason::kEarly) {
    m_early_drops_->inc();
  }
  if (ts_drops_) ts_drops_->bump(sched_.now());
  if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
    if (aqm_) {
      event_log_->record(
          sched_.now().to_seconds(), obs::Severity::kWarn, "drop",
          {obs::EventField::num("flow", victim.flow),
           obs::EventField::num("seq", victim.seq),
           obs::EventField::num("queue", qdisc_->len()),
           obs::EventField::text("cause",
                                 std::string(qdisc_drop_reason_name(reason)))});
    } else {
      event_log_->record(sched_.now().to_seconds(), obs::Severity::kWarn,
                         "drop",
                         {obs::EventField::num("flow", victim.flow),
                          obs::EventField::num("seq", victim.seq),
                          obs::EventField::num("queue", qdisc_->len())});
    }
  }
  if (flight_ && victim.app_tag >= 0) {
    record_flight(victim, obs::FlightEventKind::kLinkDrop, qdisc_->len(),
                  aqm_ ? (reason == QdiscDropReason::kEarly
                              ? obs::DropCause::kEarly
                              : obs::DropCause::kOverlimit)
                       : obs::DropCause::kNone);
  }
}

void Link::send(const Packet& p) {
  ++total_arrivals_;
  if (m_arrivals_) m_arrivals_->inc();
  ++flow_slot(p.flow).arrivals;

  // Injected faults discard on arrival.  These are not congestion drops:
  // they bypass the qdisc (and its counters) entirely so the measured p_k
  // keeps meaning "congestion loss", and are tallied in fault_drops_
  // instead — fault_drops() stays disjoint from total_drops() under every
  // discipline.
  if (down_ || burst_remaining_ > 0) {
    if (!down_) --burst_remaining_;
    ++fault_drops_;
    if (event_log_ && event_log_->enabled(obs::Severity::kWarn)) {
      event_log_->record(sched_.now().to_seconds(), obs::Severity::kWarn,
                         "fault_drop",
                         {obs::EventField::num("flow", p.flow),
                          obs::EventField::num("seq", p.seq),
                          obs::EventField::num("down", down_ ? 1 : 0)});
    }
    if (flight_ && p.app_tag >= 0) {
      record_flight(p, obs::FlightEventKind::kLinkDrop, qdisc_->len());
    }
    return;
  }

  // Idle bypass: an empty queue and a free transmitter put the packet
  // straight on the wire — no discipline consulted, exactly like the
  // pre-qdisc link (AQM only shapes a standing queue).
  if (!transmitting_ && qlen() == 0) {
    if (flight_ && p.app_tag >= 0) {
      record_flight(p, obs::FlightEventKind::kLinkEnqueue, 0);
    }
    start_transmission(p);
    return;
  }

  const std::size_t depth = qlen();
  if (!q_enqueue(p, sched_.now())) return;  // dropped + reported
  if (flight_ && p.app_tag >= 0) {
    // Pre-push depth, matching the legacy record-before-enqueue order.
    record_flight(p, obs::FlightEventKind::kLinkEnqueue, depth);
  }
  if (ts_queue_) {
    ts_queue_->add(sched_.now(), static_cast<double>(qlen()));
  }
}

void Link::start_transmission(const Packet& p) {
  if (flight_ && p.app_tag >= 0) {
    record_flight(p, obs::FlightEventKind::kLinkDequeue, qlen());
  }
  transmitting_ = true;
  in_flight_ = p;
  const SimTime tx = tx_time(p.size_bytes);
  busy_time_ += tx;
  // At most one transmission is ever outstanding, so tx-done needs no FIFO:
  // a direct port post (no EventFn, no slab traffic).
  sched_.post_port_after(tx, tx_done_port_id_);
}

void Link::on_transmit_done() {
  // Propagation is pipelined: delivery is scheduled and the transmitter is
  // immediately free for the next queued packet.
  ++total_delivered_;
  if (m_delivered_) m_delivered_->inc();
  if (ts_delivered_) ts_delivered_->bump(sched_.now());
  const SimTime when = sched_.now() + config_.prop_delay;
  if (deliveries_head_ < deliveries_.size() &&
      when < deliveries_.back().when) {
    // rescale() shrank the propagation delay under packets already on the
    // wire: this delivery undercuts the FIFO tail, so it takes the legacy
    // one-entry path (the seq is claimed at the same point either way, so
    // pop order is exactly what a FIFO-free scheduler would produce).
    const Packet delivered = in_flight_;
    sched_.post_at(when, [this, delivered] { deliver(delivered); },
                   EventCategory::kLinkDelivery);
  } else {
    // Batched path: claim the (when, seq) key now, park the pooled packet
    // in the link's FIFO, and keep exactly one armed head in the queue.
    const Scheduler::Deferred d = sched_.defer_at(when);
    const bool was_empty = deliveries_head_ == deliveries_.size();
    deliveries_.push_back(PendingDelivery{d.when, d.seq,
                                          pool_.acquire(in_flight_)});
    if (was_empty) sched_.arm_deferred(d, delivery_port_id_);
  }
  transmitting_ = false;
  // A downed link freezes its queue: the packet already on the wire
  // completes, but nothing further dequeues until set_down(false).  CoDel
  // may discard queued heads here and come back empty-handed.
  if (!down_) {
    Packet next;
    if (q_dequeue(&next, sched_.now())) {
      start_transmission(next);
      if (ts_queue_) {
        ts_queue_->add(sched_.now(), static_cast<double>(qlen()));
      }
    }
  }
}

void Link::on_delivery() {
  // Pop the FIFO head, re-arm the successor (its key was claimed when it
  // was scheduled, so arming order cannot disturb pop order), then hand the
  // packet downstream.
  const PendingDelivery head = deliveries_[deliveries_head_++];
  if (deliveries_head_ < deliveries_.size()) {
    const PendingDelivery& next = deliveries_[deliveries_head_];
    sched_.arm_deferred(Scheduler::Deferred{next.when, next.seq},
                        delivery_port_id_);
  } else {
    deliveries_.clear();
    deliveries_head_ = 0;
  }
  deliver(pool_.take(head.ref));
}

void Link::deliver(const Packet& p) {
  if (next_link_ != nullptr) {
    next_link_->send(p);
  } else if (next_demux_ != nullptr) {
    next_demux_->deliver(p);
  } else if (receiver_) {
    receiver_(p);
  }
}

void Link::set_down(bool down) {
  down_ = down;
  if (!down_ && !transmitting_) {
    Packet next;
    if (q_dequeue(&next, sched_.now())) start_transmission(next);
  }
}

void Link::rescale(double bw_factor, double delay_factor) {
  if (!(bw_factor > 0.0) || !(delay_factor > 0.0)) {
    throw std::invalid_argument{"link rescale factors must be positive"};
  }
  config_.bandwidth_bps = base_config_.bandwidth_bps * bw_factor;
  config_.prop_delay = SimTime::nanos(static_cast<std::int64_t>(
      static_cast<double>(base_config_.prop_delay.ns()) * delay_factor));
  tx_cache_bytes_ = -1;  // bandwidth changed: drop the cached tx time
  // PIE's queue-delay estimate tracks the rescaled drain rate.
  qdisc_->set_drain_rate(config_.bandwidth_bps);
}

LinkFlowCounters Link::flow_counters(FlowId flow) const {
  for (const auto& entry : per_flow_) {
    if (entry.first == flow) return entry.second;
  }
  return LinkFlowCounters{};
}

void Link::attach_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix) {
  m_arrivals_ = &registry.counter(prefix + ".arrivals");
  m_drops_ = &registry.counter(prefix + ".drops");
  m_delivered_ = &registry.counter(prefix + ".delivered");
  if (aqm_) m_early_drops_ = &registry.counter(prefix + ".early_drops");
  registry.gauge(prefix + ".queue_depth")
      .set_sampler([this] { return static_cast<double>(qdisc_->len()); });
}

double Link::utilization(SimTime elapsed) const {
  if (elapsed.ns() <= 0) return 0.0;
  return busy_time_.to_seconds() / elapsed.to_seconds();
}

}  // namespace dmp
