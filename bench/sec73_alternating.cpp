// Section 7.3's illustrative example: single-path vs DMP streaming over
// paths that alternate between zero and non-zero throughput.  For every
// x in (0, mu], the average DMP late fraction must not exceed the
// single-path one.
#include <cstdio>

#include "bench_common.hpp"
#include "model/alternating.hpp"

using namespace dmp;

int main() {
  // Closed-form, no randomness — BenchOptions only validates the knobs.
  (void)exp::bench_options();
  bench::banner("Section 7.3: alternating-throughput example "
                "(mu=25, tau=5 s, 10 s phases)");

  CsvWriter csv(bench_output_dir() + "/sec73_alternating.csv",
                {"x_pps", "f_single", "f_dmp_in_phase", "f_dmp_anti_phase",
                 "f_dmp_average"});

  std::printf("%8s %10s %14s %14s %12s\n", "x", "single", "DMP(in-phase)",
              "DMP(anti)", "DMP(avg)");
  bool dmp_always_wins = true;
  for (double x = 2.5; x <= 25.0 + 1e-9; x += 2.5) {
    AlternatingScenario scenario;
    scenario.mu_pps = 25.0;
    scenario.tau_s = 5.0;
    scenario.period_s = 20.0;
    scenario.x_pps = x;
    const auto r = alternating_late_fractions(scenario);
    dmp_always_wins &= (r.f_dmp_average <= r.f_single + 1e-9);
    std::printf("%8.1f %10.4f %14.4f %14.4f %12.4f\n", x, r.f_single,
                r.f_dmp_in_phase, r.f_dmp_anti_phase, r.f_dmp_average);
    csv.row({CsvWriter::num(x), CsvWriter::num(r.f_single),
             CsvWriter::num(r.f_dmp_in_phase),
             CsvWriter::num(r.f_dmp_anti_phase),
             CsvWriter::num(r.f_dmp_average)});
  }
  std::printf("\nclaim (paper, Section 7.3): DMP average <= single path for "
              "all x in (0, mu] — %s\n",
              dmp_always_wins ? "HOLDS" : "VIOLATED");
  std::printf("CSV: %s/sec73_alternating.csv\n", bench_output_dir().c_str());
  return 0;
}
