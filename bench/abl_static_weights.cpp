// Ablation: how much of static streaming's deficit is the even split
// (fixable by measuring average bandwidths beforehand, as Section 7.4's
// scheme does) and how much is staticness itself (unfixable without
// dynamic reallocation)?  Heterogeneous path pair, three allocators:
// even static, bandwidth-weighted static, and DMP.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  bench::banner("Ablation: static split weighting vs DMP "
                "(config 4 + config 3 paths, mu=60)");

  CsvWriter csv(bench_output_dir() + "/abl_static_weights.csv",
                {"scheme", "tau_s", "late_fraction", "share1"});

  SessionConfig base;
  base.path_configs = {table1_config(4), table1_config(3)};
  base.mu_pps = 60.0;
  base.duration_s = std::min(options.duration_s, 1500.0);

  const exp::ExperimentRunner runner(options.threads);

  // Measure the average bandwidths "beforehand" with backlogged probes —
  // exactly the information the paper grants the static scheme.  The two
  // probes are independent, so they fan out over the pool too.
  const auto probe_seeds = exp::probe_stream(options.seed);
  const auto probes = runner.map(2, [&](std::size_t k) {
    return measure_backlogged_paths(base.path_configs[k], 1, probe_seeds.at(k),
                                    600.0)[0];
  });
  const double sigma_a = probes[0].throughput_pps;
  const double sigma_b = probes[1].throughput_pps;
  std::printf("measured average path bandwidths: %.1f and %.1f pkts/s\n\n",
              sigma_a, sigma_b);

  struct Scheme {
    const char* name;
    StreamScheme scheme;
    std::vector<double> weights;
  };
  const std::vector<Scheme> schemes{
      {"static-even", StreamScheme::kStatic, {}},
      {"static-weighted", StreamScheme::kStatic, {sigma_a, sigma_b}},
      {"dmp", StreamScheme::kDmp, {}},
  };

  exp::ExperimentPlan plan;
  plan.name = "abl_static_weights";
  plan.seed = options.seed;
  plan.replications = 1;
  for (const auto& scheme : schemes) {
    auto config = base;
    config.scheme = scheme.scheme;
    config.static_weights = scheme.weights;
    plan.settings.push_back({scheme.name, config});
  }

  std::printf("%-16s %12s %12s %12s %8s\n", "scheme", "f(tau=4)", "f(tau=6)",
              "f(tau=10)", "split");
  const auto consume = [&](std::size_t s, std::size_t,
                           const exp::ReplicationOutcome& outcome) {
    if (!outcome.ok) {
      std::printf("%-16s FAILED: %s\n", schemes[s].name,
                  outcome.error.c_str());
      return;
    }
    const auto& result = outcome.result;
    std::vector<double> f;
    for (double tau : {4.0, 6.0, 10.0}) {
      f.push_back(result.trace.late_fraction_playback_order(
          tau, result.packets_generated));
      csv.row({schemes[s].name, CsvWriter::num(tau), CsvWriter::num(f.back()),
               CsvWriter::num(result.paths[0].share)});
    }
    std::printf("%-16s %12.5g %12.5g %12.5g %7.0f%%\n", schemes[s].name, f[0],
                f[1], f[2], result.paths[0].share * 100);
  };
  const auto report = runner.run(plan, consume);

  std::printf("\nreading: on a stably uneven pair, correct weighting removes "
              "most of static streaming's deficit — the even split, not "
              "staticness, is the first-order problem; DMP matches the "
              "weighted split WITHOUT the prior measurement and keeps "
              "tracking when bandwidths fluctuate (Section 7.4).\n");
  const std::string json = report.write_json();
  std::printf("CSV: %s/abl_static_weights.csv\nreport: %s (%.1f s wall)\n",
              bench_output_dir().c_str(), json.c_str(), report.wall_s);
  return 0;
}
