// Ablation: how much of static streaming's deficit is the even split
// (fixable by measuring average bandwidths beforehand, as Section 7.4's
// scheme does) and how much is staticness itself (unfixable without
// dynamic reallocation)?  Heterogeneous path pair, three allocators:
// even static, bandwidth-weighted static, and DMP.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace dmp;

int main() {
  const bench::Knobs knobs;
  bench::banner("Ablation: static split weighting vs DMP "
                "(config 4 + config 3 paths, mu=60)");

  CsvWriter csv(bench_output_dir() + "/abl_static_weights.csv",
                {"scheme", "tau_s", "late_fraction", "share1"});

  SessionConfig base;
  base.path_configs = {table1_config(4), table1_config(3)};
  base.mu_pps = 60.0;
  base.duration_s = std::min(knobs.duration_s, 1500.0);
  base.seed = knobs.seed + 31;

  // Measure the average bandwidths "beforehand" with backlogged probes —
  // exactly the information the paper grants the static scheme.
  const auto probe_a =
      measure_backlogged_paths(base.path_configs[0], 1, knobs.seed, 600.0);
  const auto probe_b =
      measure_backlogged_paths(base.path_configs[1], 1, knobs.seed + 1, 600.0);
  const double sigma_a = probe_a[0].throughput_pps;
  const double sigma_b = probe_b[0].throughput_pps;
  std::printf("measured average path bandwidths: %.1f and %.1f pkts/s\n\n",
              sigma_a, sigma_b);

  struct Scheme {
    const char* name;
    StreamScheme scheme;
    std::vector<double> weights;
  };
  const std::vector<Scheme> schemes{
      {"static-even", StreamScheme::kStatic, {}},
      {"static-weighted", StreamScheme::kStatic, {sigma_a, sigma_b}},
      {"dmp", StreamScheme::kDmp, {}},
  };

  std::printf("%-16s %12s %12s %12s %8s\n", "scheme", "f(tau=4)", "f(tau=6)",
              "f(tau=10)", "split");
  for (const auto& scheme : schemes) {
    auto config = base;
    config.scheme = scheme.scheme;
    config.static_weights = scheme.weights;
    const auto result = run_session(config);
    std::vector<double> f;
    for (double tau : {4.0, 6.0, 10.0}) {
      f.push_back(result.trace.late_fraction_playback_order(
          tau, result.packets_generated));
      csv.row({scheme.name, CsvWriter::num(tau), CsvWriter::num(f.back()),
               CsvWriter::num(result.paths[0].share)});
    }
    std::printf("%-16s %12.5g %12.5g %12.5g %7.0f%%\n", scheme.name, f[0],
                f[1], f[2], result.paths[0].share * 100);
  }
  std::printf("\nreading: on a stably uneven pair, correct weighting removes "
              "most of static streaming's deficit — the even split, not "
              "staticness, is the first-order problem; DMP matches the "
              "weighted split WITHOUT the prior measurement and keeps "
              "tracking when bandwidths fluctuate (Section 7.4).\n");
  std::printf("CSV: %s/abl_static_weights.csv\n", bench_output_dir().c_str());
  return 0;
}
