// Table 3: measured path parameters for correlated paths — both video TCP
// flows share one Table-1 bottleneck (Fig. 6 topology).  The paper's
// observation to reproduce: the two flows' parameters come out similar.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace dmp;

namespace {

struct PaperRow {
  double p, r_ms, to;
};
const std::map<std::string, PaperRow> kPaperRows = {
    {"1", {0.022, 210, 1.6}},
    {"2", {0.037, 150, 1.7}},
    {"3", {0.053, 200, 1.9}},
    {"4", {0.036, 80, 3.0}},
};

}  // namespace

int main() {
  const bench::Knobs knobs;
  bench::banner("Table 3: measured path parameters, correlated paths");
  std::printf("(%lld runs x %.0f s; flows share one bottleneck; paper "
              "values in parentheses)\n\n",
              static_cast<long long>(knobs.runs), knobs.duration_s);
  std::printf("%-8s %-16s %-16s %-14s %-14s %-11s %-11s %5s\n", "Setting",
              "p1", "p2", "R1(ms)", "R2(ms)", "TO1", "TO2", "mu");

  CsvWriter csv(bench_output_dir() + "/table3_correlated.csv",
                {"setting", "run", "p1", "p2", "rtt1_ms", "rtt2_ms", "to1",
                 "to2", "mu_pps"});

  for (const auto& setting : bench::correlated_settings()) {
    RunningStats p1, p2, r1, r2, to1, to2;
    for (std::int64_t run = 0; run < knobs.runs; ++run) {
      auto config = bench::session_for(setting, knobs.duration_s,
                                       knobs.seed + 31 + static_cast<std::uint64_t>(run) * 97);
      const auto result = run_session(config);
      p1.add(result.paths[0].loss_rate);
      p2.add(result.paths[1].loss_rate);
      r1.add(result.paths[0].rtt_s * 1e3);
      r2.add(result.paths[1].rtt_s * 1e3);
      to1.add(result.paths[0].to_ratio);
      to2.add(result.paths[1].to_ratio);
      csv.row({setting.name, std::to_string(run),
               CsvWriter::num(result.paths[0].loss_rate),
               CsvWriter::num(result.paths[1].loss_rate),
               CsvWriter::num(result.paths[0].rtt_s * 1e3),
               CsvWriter::num(result.paths[1].rtt_s * 1e3),
               CsvWriter::num(result.paths[0].to_ratio),
               CsvWriter::num(result.paths[1].to_ratio),
               CsvWriter::num(setting.mu_pps)});
    }
    const auto& paper = kPaperRows.at(setting.name);
    std::printf("%-8s %.3f (%.3f)    %.3f (%.3f)    %3.0f (%3.0f)      "
                "%3.0f (%3.0f)      %.1f (%.1f)  %.1f (%.1f)  %3.0f\n",
                setting.name.c_str(), p1.mean(), paper.p, p2.mean(), paper.p,
                r1.mean(), paper.r_ms, r2.mean(), paper.r_ms, to1.mean(),
                paper.to, to2.mean(), paper.to, setting.mu_pps);
  }
  std::printf("\nCSV: %s/table3_correlated.csv\n", bench_output_dir().c_str());
  return 0;
}
