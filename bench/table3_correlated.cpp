// Table 3: measured path parameters for correlated paths — both video TCP
// flows share one Table-1 bottleneck (Fig. 6 topology).  The paper's
// observation to reproduce: the two flows' parameters come out similar.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace dmp;

namespace {

struct PaperRow {
  double p, r_ms, to;
};
const std::map<std::string, PaperRow> kPaperRows = {
    {"1", {0.022, 210, 1.6}},
    {"2", {0.037, 150, 1.7}},
    {"3", {0.053, 200, 1.9}},
    {"4", {0.036, 80, 3.0}},
};

}  // namespace

int main() {
  const auto options = exp::bench_options();
  bench::banner("Table 3: measured path parameters, correlated paths");
  std::printf("(%lld runs x %.0f s; flows share one bottleneck; paper "
              "values in parentheses)\n\n",
              static_cast<long long>(options.runs), options.duration_s);

  CsvWriter csv(bench_output_dir() + "/table3_correlated.csv",
                {"setting", "run", "p1", "p2", "rtt1_ms", "rtt2_ms", "to1",
                 "to2", "mu_pps"});

  const auto settings = bench::correlated_settings();
  auto plan = bench::plan_for("table3_correlated", settings, options,
                              options.duration_s);
  plan.metrics = [](const SessionResult& result, std::size_t, std::size_t) {
    return std::vector<std::pair<std::string, double>>{
        {"p1", result.paths[0].loss_rate},
        {"p2", result.paths[1].loss_rate},
        {"r1_ms", result.paths[0].rtt_s * 1e3},
        {"r2_ms", result.paths[1].rtt_s * 1e3},
        {"to1", result.paths[0].to_ratio},
        {"to2", result.paths[1].to_ratio},
    };
  };
  const auto consume = [&](std::size_t s, std::size_t rep,
                           const exp::ReplicationOutcome& outcome) {
    if (!outcome.ok) {
      std::printf("setting %s run %zu FAILED: %s\n", settings[s].name.c_str(),
                  rep, outcome.error.c_str());
      return;
    }
    const auto& result = outcome.result;
    csv.row({settings[s].name, std::to_string(rep),
             CsvWriter::num(result.paths[0].loss_rate),
             CsvWriter::num(result.paths[1].loss_rate),
             CsvWriter::num(result.paths[0].rtt_s * 1e3),
             CsvWriter::num(result.paths[1].rtt_s * 1e3),
             CsvWriter::num(result.paths[0].to_ratio),
             CsvWriter::num(result.paths[1].to_ratio),
             CsvWriter::num(settings[s].mu_pps)});
  };
  const auto report = exp::ExperimentRunner(options.threads).run(plan, consume);

  std::printf("%-8s %-16s %-16s %-14s %-14s %-11s %-11s %5s\n", "Setting",
              "p1", "p2", "R1(ms)", "R2(ms)", "TO1", "TO2", "mu");
  for (std::size_t s = 0; s < settings.size(); ++s) {
    const auto& summary = report.settings[s];
    const auto& paper = kPaperRows.at(summary.name);
    const auto mean = [&summary](const char* metric) {
      const auto* series = summary.find(metric);
      return series ? series->ci().mean : 0.0;
    };
    std::printf("%-8s %.3f (%.3f)    %.3f (%.3f)    %3.0f (%3.0f)      "
                "%3.0f (%3.0f)      %.1f (%.1f)  %.1f (%.1f)  %3.0f\n",
                summary.name.c_str(), mean("p1"), paper.p, mean("p2"), paper.p,
                mean("r1_ms"), paper.r_ms, mean("r2_ms"), paper.r_ms,
                mean("to1"), paper.to, mean("to2"), paper.to,
                settings[s].mu_pps);
  }
  const std::string json = report.write_json();
  std::printf("\nCSV: %s/table3_correlated.csv\nreport: %s (%.1f s wall)\n",
              bench_output_dir().c_str(), json.c_str(), report.wall_s);
  return 0;
}
