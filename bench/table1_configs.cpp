// Table 1: the four bottleneck-link configurations.  Prints the rows and
// verifies each is realizable in the simulator — the background traffic
// must genuinely congest the bottleneck (positive drop rate, substantial
// utilization), since the whole validation methodology depends on it.
// The four probes fan out over the experiment runner.
#include <cstdio>
#include <vector>

#include "apps/background.hpp"
#include "bench_common.hpp"
#include "net/topology.hpp"
#include "util/csv.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  bench::banner("Table 1: bottleneck-link configurations");
  std::printf("%-7s %4s %5s %10s %9s %7s | %11s %8s\n", "Config", "FTP",
              "HTTP", "delay(ms)", "bw(Mbps)", "buffer", "utilization",
              "loss");

  CsvWriter csv(bench_output_dir() + "/table1_configs.csv",
                {"config", "ftp_flows", "http_flows", "prop_delay_ms",
                 "bandwidth_mbps", "buffer_pkts", "utilization", "loss_rate"});

  const double horizon_s = options.table1_probe_s;
  const auto probe_seeds = exp::probe_stream(options.seed);

  struct Row {
    double utilization = 0.0;
    double loss = 0.0;
  };
  const auto rows = exp::ExperimentRunner(options.threads).map(4, [&](std::size_t i) {
    const int id = static_cast<int>(i) + 1;
    const auto config = table1_config(id);
    Scheduler sched;
    Rng rng(probe_seeds.at(i));
    DumbbellPath path(sched, config.bottleneck());
    BackgroundTraffic background(sched, path, config, 1000, rng.fork());
    sched.run_until(SimTime::seconds(horizon_s));

    Row row;
    row.utilization =
        path.bottleneck().utilization(SimTime::seconds(horizon_s));
    row.loss = path.bottleneck().total_arrivals() == 0
                   ? 0.0
                   : static_cast<double>(path.bottleneck().total_drops()) /
                         static_cast<double>(path.bottleneck().total_arrivals());
    return row;
  });

  for (int id = 1; id <= 4; ++id) {
    const auto config = table1_config(id);
    const auto& row = rows[static_cast<std::size_t>(id - 1)];
    std::printf("%-7d %4zu %5zu %10.0f %9.1f %7zu | %11.2f %8.4f\n", id,
                config.ftp_flows, config.http_flows,
                config.prop_delay.to_seconds() * 1e3,
                config.bandwidth_bps / 1e6, config.buffer_packets,
                row.utilization, row.loss);
    csv.row({std::to_string(id), std::to_string(config.ftp_flows),
             std::to_string(config.http_flows),
             CsvWriter::num(config.prop_delay.to_seconds() * 1e3),
             CsvWriter::num(config.bandwidth_bps / 1e6),
             std::to_string(config.buffer_packets),
             CsvWriter::num(row.utilization), CsvWriter::num(row.loss)});
  }
  std::printf("\npaper reference: cfg1 (9,40,40ms,3.7,50) cfg2 (9,40,1ms,3.7,50)"
              "\n                 cfg3 (19,40,40ms,5.0,50) cfg4 (5,20,1ms,5.0,30)\n");
  std::printf("CSV: %s/table1_configs.csv\n", bench_output_dir().c_str());
  return 0;
}
