// Extension (the paper's "performance study under larger number of paths
// is left as future work"): K = 1..4 homogeneous paths at the SAME
// aggregate achievable throughput.  More paths at equal aggregate capacity
// means more diversity (independent loss processes) but a smaller, more
// fragile share per path — this quantifies the trade-off.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const bench::Knobs knobs;
  const double p = 0.02, to = 4.0, mu = 25.0;
  bench::banner("Extension: number of paths K at equal aggregate throughput "
                "(p=0.02, TO=4, mu=25)");

  CsvWriter csv(bench_output_dir() + "/ext_kpaths.csv",
                {"k", "ratio", "rtt_ms", "tau_s", "late_fraction",
                 "required_tau_s"});

  RequiredDelayOptions options;
  options.min_consumptions = knobs.mc_min;
  options.max_consumptions = knobs.mc_max;
  options.tau_max_s = 90.0;
  options.seed = knobs.seed;

  for (double ratio : {1.4, 1.6}) {
    std::printf("\nsigma_a/mu = %.1f\n", ratio);
    std::printf("%4s %10s %12s %12s %12s %14s\n", "K", "RTT(ms)", "f(tau=4)",
                "f(tau=10)", "f(tau=20)", "required tau");
    for (int k = 1; k <= 4; ++k) {
      // Per-path sigma = ratio*mu/K -> per-path RTT scales with K.
      const double rtt =
          bench::unit_rtt_throughput(p, to) * k / (ratio * mu);
      ComposedParams params;
      for (int i = 0; i < k; ++i) {
        params.flows.push_back(bench::chain_of(p, rtt, to));
      }
      params.mu_pps = mu;

      std::vector<double> f_at;
      for (double tau : {4.0, 10.0, 20.0}) {
        params.tau_s = tau;
        DmpModelMonteCarlo mc(params, knobs.seed + static_cast<std::uint64_t>(k));
        f_at.push_back(mc.run(knobs.mc_max, knobs.mc_max / 10).late_fraction);
      }
      const auto required = required_startup_delay(params, options);
      std::printf("%4d %10.0f %12.4g %12.4g %12.4g %11.0f s%s\n", k,
                  rtt * 1e3, f_at[0], f_at[1], f_at[2], required.tau_s,
                  required.feasible ? "" : "+");
      for (std::size_t i = 0; i < 3; ++i) {
        const double taus[] = {4.0, 10.0, 20.0};
        csv.row({std::to_string(k), CsvWriter::num(ratio),
                 CsvWriter::num(rtt * 1e3), CsvWriter::num(taus[i]),
                 CsvWriter::num(f_at[i]), CsvWriter::num(required.tau_s)});
      }
    }
  }
  std::printf("\nreading: K = 1 is single-path streaming (the paper's ratio-2"
              " rule).  At fixed tau the late fraction falls monotonically "
              "with K (diversity); the required delay stays roughly flat "
              "because each path's dynamics slow in proportion.\n");
  std::printf("CSV: %s/ext_kpaths.csv\n", bench_output_dir().c_str());
  return 0;
}
