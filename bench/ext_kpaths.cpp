// Extension (the paper's "performance study under larger number of paths
// is left as future work"): K = 1..4 homogeneous paths at the SAME
// aggregate achievable throughput.  More paths at equal aggregate capacity
// means more diversity (independent loss processes) but a smaller, more
// fragile share per path — this quantifies the trade-off.  One runner
// work item per (ratio, K) cell.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  const double p = 0.02, to = 4.0, mu = 25.0;
  bench::banner("Extension: number of paths K at equal aggregate throughput "
                "(p=0.02, TO=4, mu=25)");

  CsvWriter csv(bench_output_dir() + "/ext_kpaths.csv",
                {"k", "ratio", "rtt_ms", "tau_s", "late_fraction",
                 "required_tau_s"});

  const std::vector<double> ratios{1.4, 1.6};
  const std::vector<double> taus{4.0, 10.0, 20.0};

  struct Cell {
    double rtt = 0.0;
    std::vector<double> f_at;
    RequiredDelayResult required{};
  };
  const auto mc_seeds = exp::mc_stream(options.seed);
  const auto cells =
      exp::ExperimentRunner(options.threads).map(ratios.size() * 4, [&](std::size_t i) {
        const double ratio = ratios[i / 4];
        const int k = static_cast<int>(i % 4) + 1;
        Cell cell;
        // Per-path sigma = ratio*mu/K -> per-path RTT scales with K.
        cell.rtt = bench::unit_rtt_throughput(p, to) * k / (ratio * mu);
        ComposedParams params;
        for (int f = 0; f < k; ++f) {
          params.flows.push_back(bench::chain_of(p, cell.rtt, to));
        }
        params.mu_pps = mu;

        const auto cell_seeds = mc_seeds.substream(i);
        for (std::size_t t = 0; t < taus.size(); ++t) {
          params.tau_s = taus[t];
          DmpModelMonteCarlo mc(params, cell_seeds.at(t));
          cell.f_at.push_back(
              mc.run(options.mc_max, options.mc_max / 10).late_fraction);
        }
        RequiredDelayOptions delay_options;
        delay_options.min_consumptions = options.mc_min;
        delay_options.max_consumptions = options.mc_max;
        delay_options.tau_max_s = 90.0;
        delay_options.seed = cell_seeds.at(taus.size());
        cell.required = required_startup_delay(params, delay_options);
        return cell;
      });

  for (std::size_t r = 0; r < ratios.size(); ++r) {
    std::printf("\nsigma_a/mu = %.1f\n", ratios[r]);
    std::printf("%4s %10s %12s %12s %12s %14s\n", "K", "RTT(ms)", "f(tau=4)",
                "f(tau=10)", "f(tau=20)", "required tau");
    for (int k = 1; k <= 4; ++k) {
      const auto& cell = cells[r * 4 + static_cast<std::size_t>(k - 1)];
      std::printf("%4d %10.0f %12.4g %12.4g %12.4g %11.0f s%s\n", k,
                  cell.rtt * 1e3, cell.f_at[0], cell.f_at[1], cell.f_at[2],
                  cell.required.tau_s, cell.required.feasible ? "" : "+");
      for (std::size_t t = 0; t < taus.size(); ++t) {
        csv.row({std::to_string(k), CsvWriter::num(ratios[r]),
                 CsvWriter::num(cell.rtt * 1e3), CsvWriter::num(taus[t]),
                 CsvWriter::num(cell.f_at[t]),
                 CsvWriter::num(cell.required.tau_s)});
      }
    }
  }
  std::printf("\nreading: K = 1 is single-path streaming (the paper's ratio-2"
              " rule).  At fixed tau the late fraction falls monotonically "
              "with K (diversity); the required delay stays roughly flat "
              "because each path's dynamics slow in proportion.\n");
  std::printf("CSV: %s/ext_kpaths.csv\n", bench_output_dir().c_str());
  return 0;
}
