// AQM queue-discipline comparison: late fraction and required startup
// delay per bottleneck discipline (src/net/qdisc/), across a homogeneous
// K-path grid (Table-1 config 2, mu = 25*K — constant per-path load) and
// the Fig. 5 heterogeneous pair (Setting 1-3).
//
// Each arm's measured per-path parameters (p_k, R_k, TO_k — now shaped by
// the discipline's early drops, not just buffer overflow) feed back into
// the analytical chain-cache/CTMC pipeline: a Monte-Carlo late fraction at
// tau = 4 s and a required-startup-delay search per arm, recorded as one
// DivergenceSeries per qdisc ("aqm_droptail", "aqm_pie", ...).  That makes
// the bench answer the paper-shaped question for AQM bottlenecks: does the
// model still track the simulation when the loss process is controller-
// driven?  DMP_QDISC is ignored here — the discipline sweep IS the
// experiment (like DMP_SCHED in bench_schedulers).
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "model/required_delay.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "obs/divergence/divergence.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  bench::banner("AQM: late fraction and required delay per queue discipline");

  const std::vector<std::string> qdiscs{"droptail", "pie", "fq_pie", "codel"};
  // Fig. 5's heterogeneous pair, streamed under each discipline.
  const bench::ValidationSetting hetero{"1-3", 1, 3, 40.0, false};

  struct Arm {
    std::string name;
    std::string qdisc;   // spec string (also the CSV tag)
    std::size_t paths;   // K
    double mu_pps;
  };
  std::vector<Arm> arms;

  exp::ExperimentPlan plan;
  plan.name = "aqm";
  plan.replications = static_cast<std::size_t>(options.runs);
  plan.seed = options.seed;
  for (const auto& qdisc : qdiscs) {
    for (std::size_t k = 1; k <= 3; ++k) {
      SessionConfig config;
      config.path_configs.assign(k, table1_config(2));
      config.num_flows = k;
      config.mu_pps = 25.0 * static_cast<double>(k);
      config.duration_s = options.duration_s;
      config.qdisc = qdisc;
      const std::string name = qdisc + "_k" + std::to_string(k);
      arms.push_back({name, qdisc, k, config.mu_pps});
      plan.settings.push_back({name, std::move(config)});
    }
    SessionConfig config = bench::session_for(hetero, options.duration_s);
    config.qdisc = qdisc;
    const std::string name = qdisc + "_" + hetero.name;
    arms.push_back({name, qdisc, 2, hetero.mu_pps});
    plan.settings.push_back({name, std::move(config)});
  }

  plan.metrics = [](const SessionResult& result, std::size_t, std::size_t) {
    std::vector<std::pair<std::string, double>> m;
    m.emplace_back("f_tau2", result.trace.late_fraction_playback_order(
                                 2.0, result.packets_generated));
    m.emplace_back("f_tau4", result.trace.late_fraction_playback_order(
                                 4.0, result.packets_generated));
    for (std::size_t i = 0; i < result.paths.size(); ++i) {
      const auto& path = result.paths[i];
      const std::string tag = "path" + std::to_string(i);
      m.emplace_back(tag + "_p", path.loss_rate);
      m.emplace_back(tag + "_rtt_ms", path.rtt_s * 1e3);
      m.emplace_back(tag + "_to", path.to_ratio);
      m.emplace_back(tag + "_aqm_early",
                     static_cast<double>(path.aqm_early_drops));
    }
    return m;
  };

  auto report = exp::ExperimentRunner(options.threads).run(plan);

  // --- model feedback: measured (p, R, TO) per arm -> CTMC pipeline ---
  // Chain parameters must stay in the model's domain even when a
  // discipline measures ~0 loss over a short CI run, so clamp: loss at
  // 1e-5, RTT at 1 ms, TO ratio at 1 (R_TO >= R by definition).
  const auto mean_of = [&report](std::size_t setting, const std::string& name) {
    const auto* metric = report.settings[setting].find(name);
    return metric ? metric->ci().mean : 0.0;
  };
  const double sim_resolution =
      1.0 / (25.0 * options.duration_s * static_cast<double>(options.runs));
  const auto mc_seeds = exp::mc_stream(options.seed);

  struct ModelRow {
    double model_f_tau4 = 0.0;
    RequiredDelayResult required{};
  };
  std::vector<ModelRow> model_rows(arms.size());
  std::vector<obs::DivergenceSeries> series;
  for (const auto& qdisc : qdiscs) {
    obs::DivergenceSeries s;
    s.name = "aqm_" + qdisc;
    s.metric = "late_fraction_playback";
    s.x_label = "tau_s";
    s.tolerance.abs = sim_resolution;
    s.tolerance.ratio = 10.0;
    s.tolerance.within_ci = true;
    series.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& arm = arms[i];
    ComposedParams params;
    params.mu_pps = arm.mu_pps;
    for (std::size_t j = 0; j < arm.paths; ++j) {
      const std::string tag = "path" + std::to_string(j);
      TcpChainParams chain;
      chain.loss_rate = std::max(mean_of(i, tag + "_p"), 1e-5);
      chain.rtt_s = std::max(mean_of(i, tag + "_rtt_ms") / 1e3, 1e-3);
      chain.to_ratio = std::max(mean_of(i, tag + "_to"), 1.0);
      chain.wmax = 20;
      chain.ack_every = 1;
      params.flows.push_back(chain);
    }
    const auto arm_seeds = mc_seeds.substream(i);
    params.tau_s = 4.0;
    DmpModelMonteCarlo mc(params, arm_seeds.at(0));
    model_rows[i].model_f_tau4 =
        mc.run(options.mc_max, options.mc_max / 10).late_fraction;
    RequiredDelayOptions delay_options;
    delay_options.min_consumptions = options.mc_min;
    delay_options.max_consumptions = options.mc_max;
    delay_options.tau_max_s = 90.0;
    delay_options.seed = arm_seeds.at(1);
    delay_options.shards = options.model_shards;
    delay_options.threads = options.threads;
    model_rows[i].required = required_startup_delay(params, delay_options);

    const auto* f4 = report.settings[i].find("f_tau4");
    const auto ci = f4 ? f4->ci() : ConfidenceInterval{};
    const std::size_t q = static_cast<std::size_t>(
        std::find(qdiscs.begin(), qdiscs.end(), arm.qdisc) - qdiscs.begin());
    series[q].add(arm.name, 4.0, model_rows[i].model_f_tau4, ci.mean,
                  ci.half_width);
  }

  CsvWriter csv(bench_output_dir() + "/aqm.csv",
                {"setting", "qdisc", "paths", "mu_pps", "f_tau2", "f_tau4",
                 "model_f_tau4", "required_tau_s", "feasible",
                 "aqm_early_drops"});
  std::printf("\n%-14s %3s %10s %10s %12s %13s %10s\n", "setting", "K",
              "f(tau=2)", "f(tau=4)", "model f(4)", "required tau",
              "early/run");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& arm = arms[i];
    double early = 0.0;
    for (std::size_t j = 0; j < arm.paths; ++j) {
      early += mean_of(i, "path" + std::to_string(j) + "_aqm_early");
    }
    const auto& row = model_rows[i];
    std::printf("%-14s %3zu %10.4g %10.4g %12.4g %10.0f s%s %10.1f\n",
                arm.name.c_str(), arm.paths, mean_of(i, "f_tau2"),
                mean_of(i, "f_tau4"), row.model_f_tau4, row.required.tau_s,
                row.required.feasible ? "" : "+", early);
    csv.row({arm.name, arm.qdisc, std::to_string(arm.paths),
             CsvWriter::num(arm.mu_pps), CsvWriter::num(mean_of(i, "f_tau2")),
             CsvWriter::num(mean_of(i, "f_tau4")),
             CsvWriter::num(row.model_f_tau4),
             CsvWriter::num(row.required.tau_s),
             row.required.feasible ? "1" : "0", CsvWriter::num(early)});
  }

  for (auto& s : series) {
    const auto dstats = s.stats();
    std::printf("divergence %s: %zu point(s), %zu diverged, max|r|=%.3g\n",
                s.name.c_str(), dstats.count, dstats.diverged,
                dstats.max_abs_residual);
    report.divergence.push_back(std::move(s));
  }
  std::printf("\nreading: the paper's Table-1 bottlenecks are heavily "
              "oversubscribed by design, and their big droptail buffers are "
              "load-bearing — AQM keeps the queue short (RTT drops ~3x) but "
              "must push loss far higher to throttle the same background "
              "flood, which drives the low-rate video TCP into timeouts and "
              "RAISES the late fraction.  FQ-PIE caps every flow at its DRR "
              "fair share, so the video flows cannot reclaim capacity "
              "either.  Streaming-friendly AQM needs headroom, not "
              "oversubscription.\n");
  std::printf("CSV: %s/aqm.csv\n", bench_output_dir().c_str());
  std::printf("JSON: %s\n", report.write_json().c_str());
  return 0;
}
