// Fig. 7: model validation via "Internet" experiments — reproduced over the
// stochastic WAN emulator (no PlanetLab vantage points here; see DESIGN.md).
// Ten experiments, mixing the paper's setups: homogeneous ADSL-like path
// pairs at mu = 25 or 50 pkts/s and a heterogeneous West-coast/transpacific
// pair at mu = 100 pkts/s.  The ten experiments (emulation + their
// Monte-Carlo model runs) fan out over the experiment runner.
//
//   (a) scatter: late fraction in arrival order vs playback order;
//   (b) scatter: model prediction vs measured late fraction, with the
//       paper's decade (10x) acceptance band.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "emul/experiment.hpp"
#include "model/composed_chain.hpp"

using namespace dmp;
using namespace dmp::emul;

int main() {
  const auto options = exp::bench_options();
  const double duration_s = options.fig7_duration_s;
  bench::banner("Fig. 7: Internet-experiment validation (emulated WAN)");
  std::printf("(10 experiments x %.0f s)\n\n", duration_s);

  CsvWriter csv(bench_output_dir() + "/fig7_internet.csv",
                {"experiment", "kind", "mu_pps", "tau_s", "measured_playback",
                 "measured_arrival", "model", "p1", "p2", "rtt1_ms",
                 "rtt2_ms"});

  struct Setup {
    const char* kind;
    WanPathConfig a, b;
    double mu;
  };
  std::vector<Setup> setups;
  for (int i = 0; i < 4; ++i) {
    setups.push_back({"homogeneous", adsl_slow_profile(), adsl_slow_profile(),
                      25.0});
  }
  for (int i = 0; i < 3; ++i) {
    setups.push_back({"homogeneous", adsl_fast_profile(), adsl_fast_profile(),
                      50.0});
  }
  for (int i = 0; i < 3; ++i) {
    setups.push_back({"heterogeneous", adsl_fast_profile(),
                      transpacific_path_profile(), 100.0});
  }

  const std::vector<double> taus{4.0, 6.0, 8.0, 10.0};
  const SeedStream emul_seeds(options.seed,
                              exp::seed_domain::stream(
                                  exp::seed_domain::kEmul, 0));

  struct TauPoint {
    double fp, fa, fm;
  };
  struct ExpRow {
    InternetExperimentResult result;
    double sigma_a = 0.0;
    std::vector<TauPoint> points;
  };

  const auto rows =
      exp::ExperimentRunner(options.threads).map(setups.size(), [&](std::size_t e) {
        InternetExperimentConfig config;
        config.paths = {setups[e].a, setups[e].b};
        config.mu_pps = setups[e].mu;
        config.duration_s = duration_s;
        config.seed = emul_seeds.at(e);
        ExpRow row;
        row.result = run_internet_experiment(config);

        // Model parameters estimated from the experiment's own traces — the
        // Bernoulli WAN loss process carries no drop-tail burst bias, so the
        // video-stream measurements are the right estimator here (as in the
        // paper's tcpdump methodology).
        ComposedParams model;
        model.mu_pps = config.mu_pps;
        for (const auto& m : row.result.paths) {
          TcpChainParams flow;
          flow.loss_rate = std::max(m.loss_rate, 1e-5);
          flow.rtt_s = m.rtt_s;
          flow.to_ratio = std::max(m.to_ratio, 1.0);
          flow.wmax = 20;
          model.flows.push_back(flow);
          row.sigma_a += TcpFlowChain(flow).achievable_throughput_pps();
        }
        const auto mc_seeds = exp::mc_stream(options.seed, e);
        for (std::size_t t = 0; t < taus.size(); ++t) {
          model.tau_s = taus[t];
          DmpModelMonteCarlo mc(model, mc_seeds.at(t));
          const auto mr = mc.run(options.mc_max, options.mc_max / 10);
          row.points.push_back(
              {row.result.trace.late_fraction_playback_order(
                   taus[t], row.result.packets_generated),
               row.result.trace.late_fraction_arrival_order(
                   taus[t], row.result.packets_generated),
               mr.late_fraction});
        }
        return row;
      });

  int in_band = 0, total_points = 0, zero_points = 0, zero_both = 0;
  std::printf("%4s %-13s %4s %5s %12s %12s %12s %8s\n", "exp", "kind", "mu",
              "tau", "meas(play)", "meas(arr)", "model", "fm/fs");
  for (std::size_t e = 0; e < setups.size(); ++e) {
    const auto& row = rows[e];
    std::printf("  [exp %zu: p=(%.4f,%.4f) R=(%.0f,%.0f)ms sigma_a/mu=%.2f]\n",
                e, row.result.paths[0].loss_rate,
                row.result.paths[1].loss_rate, row.result.paths[0].rtt_s * 1e3,
                row.result.paths[1].rtt_s * 1e3, row.sigma_a / setups[e].mu);
    for (std::size_t t = 0; t < taus.size(); ++t) {
      const double tau = taus[t];
      const double fp = row.points[t].fp;
      const double fa = row.points[t].fa;
      const double fm = row.points[t].fm;
      // The paper's Fig. 7(b) is log-log: points where either side is 0
      // cannot be plotted and are discussed separately (its tau = 10 s
      // experiments).  We follow the same convention.
      if (fp == 0.0 || fm == 0.0) {
        ++zero_points;
        zero_both += (fp == 0.0 && fm < 1e-3) || (fm == 0.0 && fp < 1e-3);
        std::printf("%4zu %-13s %4.0f %5.0f %12.5g %12.5g %12.5g %8s\n", e,
                    setups[e].kind, setups[e].mu, tau, fp, fa, fm,
                    "(zero)");
      } else {
        const double ratio = fm / fp;
        const bool match = ratio > 0.1 && ratio < 10.0;
        in_band += match;
        ++total_points;
        std::printf("%4zu %-13s %4.0f %5.0f %12.5g %12.5g %12.5g %8.3g%s\n",
                    e, setups[e].kind, setups[e].mu, tau, fp, fa, fm, ratio,
                    match ? "" : "  <-- outside decade band");
      }
      csv.row({std::to_string(e), setups[e].kind,
               CsvWriter::num(setups[e].mu), CsvWriter::num(tau),
               CsvWriter::num(fp), CsvWriter::num(fa), CsvWriter::num(fm),
               CsvWriter::num(row.result.paths[0].loss_rate),
               CsvWriter::num(row.result.paths[1].loss_rate),
               CsvWriter::num(row.result.paths[0].rtt_s * 1e3),
               CsvWriter::num(row.result.paths[1].rtt_s * 1e3)});
    }
  }
  std::printf("\nplottable points within the paper's decade band: %d / %d "
              "(paper: all but one)\n",
              in_band, total_points);
  std::printf("points with a zero side (not plottable on the paper's "
              "log-log axes): %d, of which %d have the other side below "
              "1e-3\n",
              zero_points, zero_both);
  std::printf("CSV: %s/fig7_internet.csv\n", bench_output_dir().c_str());
  return 0;
}
