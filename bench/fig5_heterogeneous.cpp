// Fig. 5: validation for independent heterogeneous paths (Setting 1-2).
#include "fig_validation.hpp"

int main() {
  dmp::bench::run_validation_figure(
      dmp::bench::ValidationSetting{"1-2", 1, 2, 50.0, false}, "fig5");
  return 0;
}
