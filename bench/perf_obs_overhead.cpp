// Telemetry-overhead guard (google-benchmark): the same fig4-style session
// with the streaming telemetry layer off vs fully on (windowed channels on
// every link/TCP agent/server/client recording point plus the delay
// sketch).  Items are executed DES events, so items/s is an event rate the
// CI guard can compare across the pair: telemetry-on must stay within a few
// percent of telemetry-off (scripts/bench_guard.py --max-obs-overhead).
//
// No artifacts are written by either arm — this measures the recording
// points themselves, not the end-of-run CSV flush.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "apps/background.hpp"
#include "stream/session.hpp"

namespace {

using namespace dmp;

SessionConfig overhead_config() {
  // Homogeneous two-path fig4 setting (Table-1 config 1), long enough that
  // steady-state recording dominates setup.
  SessionConfig config;
  config.path_configs = {table1_config(1), table1_config(1)};
  config.mu_pps = 50.0;
  config.duration_s = 60.0;
  config.warmup_s = 5.0;
  config.drain_s = 5.0;
  config.seed = 2007;
  return config;
}

void BM_SessionTelemetryOff(benchmark::State& state) {
  bench::run_session_arm(state, overhead_config());
}
BENCHMARK(BM_SessionTelemetryOff)->Unit(benchmark::kMillisecond);

void BM_SessionTelemetryOn(benchmark::State& state) {
  SessionConfig config = overhead_config();
  config.telemetry.enabled = true;
  bench::run_session_arm(state, config);
}
BENCHMARK(BM_SessionTelemetryOn)->Unit(benchmark::kMillisecond);

// The DES self-profiler's count-only mode, for visibility (reported, not
// guarded: one branch + one increment per executed event).
void BM_SessionProfilerOn(benchmark::State& state) {
  SessionConfig config = overhead_config();
  config.profile = true;
  bench::run_session_arm(state, config);
}
BENCHMARK(BM_SessionProfilerOn)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
