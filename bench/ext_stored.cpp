// Extension (paper Section 3: stored-video streaming "left as future
// work"): live vs stored DMP streaming on identical paths, in both the
// packet simulator and the model.  Stored streaming prefetches without the
// live-source cap, so its late fraction can only be lower.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const bench::Knobs knobs;
  bench::banner("Extension: live vs stored DMP streaming");

  CsvWriter csv(bench_output_dir() + "/ext_stored.csv",
                {"source", "tau_s", "f_live", "f_stored"});

  // --- packet simulator: Setting 2-2 ---
  const bench::ValidationSetting setting{"2-2", 2, 2, 50.0, false};
  const double duration = std::min(knobs.duration_s, 1000.0);
  std::printf("\npacket simulator (Setting 2-2, %.0f s, mu=50):\n", duration);
  std::printf("%6s %14s %14s\n", "tau", "live", "stored");
  auto config = bench::session_for(setting, duration, knobs.seed + 4242);
  config.scheme = StreamScheme::kDmp;
  const auto live = run_session(config);
  config.scheme = StreamScheme::kStored;
  const auto stored = run_session(config);
  for (double tau : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const double fl =
        live.trace.late_fraction_playback_order(tau, live.packets_generated);
    const double fs = stored.trace.late_fraction_playback_order(
        tau, stored.packets_generated);
    std::printf("%6.0f %14.6g %14.6g\n", tau, fl, fs);
    csv.row({"sim", CsvWriter::num(tau), CsvWriter::num(fl),
             CsvWriter::num(fs)});
  }

  // --- model: matched sigma_a/mu = 1.3 paths ---
  const double p = 0.02, to = 4.0, mu = 25.0, ratio = 1.3;
  const double rtt = bench::rtt_for_ratio(p, to, mu, ratio);
  ComposedParams params = bench::homogeneous_setup(p, rtt, to, mu);
  const auto video_packets = static_cast<std::int64_t>(mu * 3000);
  std::printf("\nmodel (p=%.2f, TO=%.0f, sigma_a/mu=%.1f, 3000-s video):\n",
              p, to, ratio);
  std::printf("%6s %14s %14s\n", "tau", "live", "stored");
  for (double tau : {2.0, 4.0, 8.0, 16.0}) {
    params.tau_s = tau;
    DmpModelMonteCarlo live_mc(params, knobs.seed);
    const double fl =
        live_mc.run(knobs.mc_max, knobs.mc_max / 10).late_fraction;
    const auto fs = stored_video_late_fraction(
        params, video_packets, 24, knobs.seed + 1);
    std::printf("%6.0f %14.6g %14.6g\n", tau, fl, fs.late_fraction);
    csv.row({"model", CsvWriter::num(tau), CsvWriter::num(fl),
             CsvWriter::num(fs.late_fraction)});
  }
  std::printf("\nreading: at equal tau the stored stream is never later than "
              "the live one; the gap is the value of prefetching.\n");
  std::printf("CSV: %s/ext_stored.csv\n", bench_output_dir().c_str());
  return 0;
}
