// Extension (paper Section 3: stored-video streaming "left as future
// work"): live vs stored DMP streaming on identical paths, in both the
// packet simulator and the model.  Stored streaming prefetches without the
// live-source cap, so its late fraction can only be lower.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  bench::banner("Extension: live vs stored DMP streaming");

  CsvWriter csv(bench_output_dir() + "/ext_stored.csv",
                {"source", "tau_s", "f_live", "f_stored"});

  // --- packet simulator: Setting 2-2, live and stored as two settings of
  // one plan (same replication seed, so they see identical backgrounds) ---
  const bench::ValidationSetting setting{"2-2", 2, 2, 50.0, false};
  const double duration = std::min(options.duration_s, 1000.0);
  std::printf("\npacket simulator (Setting 2-2, %.0f s, mu=50):\n", duration);
  std::printf("%6s %14s %14s\n", "tau", "live", "stored");

  exp::ExperimentPlan plan;
  plan.name = "ext_stored";
  plan.seed = options.seed;
  plan.replications = 1;
  auto live_config = bench::session_for(setting, duration);
  live_config.scheme = StreamScheme::kDmp;
  auto stored_config = live_config;
  stored_config.scheme = StreamScheme::kStored;
  plan.settings.push_back({"live", live_config});
  plan.settings.push_back({"stored", stored_config});
  // Both schemes on the same path draws: reuse setting 0's seed stream.
  plan.configure = [&plan](SessionConfig& config, std::size_t,
                           std::size_t rep) {
    config.seed = exp::replication_seed(plan.seed, 0, rep);
  };

  std::vector<SessionResult> results(2);
  const auto report = exp::ExperimentRunner(options.threads)
                          .run(plan, [&](std::size_t s, std::size_t,
                                         const exp::ReplicationOutcome& o) {
                            if (!o.ok) {
                              std::printf("%s FAILED: %s\n",
                                          plan.settings[s].name.c_str(),
                                          o.error.c_str());
                              return;
                            }
                            results[s] = o.result;
                          });
  for (double tau : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const double fl = results[0].trace.late_fraction_playback_order(
        tau, results[0].packets_generated);
    const double fs = results[1].trace.late_fraction_playback_order(
        tau, results[1].packets_generated);
    std::printf("%6.0f %14.6g %14.6g\n", tau, fl, fs);
    csv.row({"sim", CsvWriter::num(tau), CsvWriter::num(fl),
             CsvWriter::num(fs)});
  }

  // --- model: matched sigma_a/mu = 1.3 paths ---
  const double p = 0.02, to = 4.0, mu = 25.0, ratio = 1.3;
  const double rtt = bench::rtt_for_ratio(p, to, mu, ratio);
  ComposedParams params = bench::homogeneous_setup(p, rtt, to, mu);
  const auto video_packets = static_cast<std::int64_t>(mu * 3000);
  const auto mc_seeds = exp::mc_stream(options.seed);
  std::printf("\nmodel (p=%.2f, TO=%.0f, sigma_a/mu=%.1f, 3000-s video):\n",
              p, to, ratio);
  std::printf("%6s %14s %14s\n", "tau", "live", "stored");
  const std::vector<double> model_taus{2.0, 4.0, 8.0, 16.0};
  for (std::size_t i = 0; i < model_taus.size(); ++i) {
    params.tau_s = model_taus[i];
    DmpModelMonteCarlo live_mc(params, mc_seeds.at(2 * i));
    const double fl =
        live_mc.run(options.mc_max, options.mc_max / 10).late_fraction;
    const auto fs = stored_video_late_fraction(params, video_packets, 24,
                                               mc_seeds.at(2 * i + 1));
    std::printf("%6.0f %14.6g %14.6g\n", model_taus[i], fl, fs.late_fraction);
    csv.row({"model", CsvWriter::num(model_taus[i]), CsvWriter::num(fl),
             CsvWriter::num(fs.late_fraction)});
  }
  std::printf("\nreading: at equal tau the stored stream is never later than "
              "the live one; the gap is the value of prefetching.\n");
  const std::string json = report.write_json();
  std::printf("CSV: %s/ext_stored.csv\nreport: %s (%.1f s wall)\n",
              bench_output_dir().c_str(), json.c_str(), report.wall_s);
  return 0;
}
