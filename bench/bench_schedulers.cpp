// Scheduler strategy comparison: late fraction vs goodput overhead for
// every PathScheduler strategy (src/stream/scheduler/), across the paper's
// Fig. 4 homogeneous grid (Setting 2-2), the Fig. 5 heterogeneous grid
// (Setting 1-3), and a mid-stream outage arm (the bench_failover plan:
// path0 dark for 5 s starting at 20% of the stream).
//
// The interesting trade-off is the redundancy corner: `redundant` and
// `parity-<k>` spend idle path capacity on extra wire copies (goodput
// overhead > 1) to buy a lower late fraction when a path degrades or
// dies, while `pull` (the paper's scheme) sends every packet exactly once
// and pays for outages in startup delay.  DMP_SCHED is ignored here — the
// strategy sweep IS the experiment.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  const double duration_s = options.duration_s;
  const double t_down = std::max(5.0, 0.2 * duration_s);
  const double outage_s = 5.0;
  const bool outage_fits = t_down + outage_s < duration_s;
  bench::banner("Schedulers: late fraction vs goodput overhead per strategy");
  if (outage_fits) {
    std::printf("(outage arm: path0 down %.0f-%.0f s of a %.0f s stream)\n",
                t_down, t_down + outage_s, duration_s);
  } else {
    std::printf("(stream too short for the outage arm; skipping it)\n");
  }

  const std::vector<std::string> strategies{
      "pull", "weighted", "best_path", "round_robin", "redundant", "parity-4"};
  // Fig. 4's homogeneous pair and Fig. 5's heterogeneous pair.
  const std::vector<bench::ValidationSetting> grids{
      {"2-2", 2, 2, 50.0, false},
      {"1-3", 1, 3, 40.0, false},
  };
  // The outage arm rides the bench_failover path pair (Table-1 config 4 —
  // paths with headroom).  Redundancy spends SPARE capacity; at saturation
  // (e.g. the 2-2 grid at mu = 50) there is no spare window to ride and
  // copies only displace live data — docs/SCHEDULERS.md, decision table.
  const bench::ValidationSetting outage_grid{"4-4", 4, 4, 30.0, false};

  exp::ExperimentPlan plan;
  plan.name = "schedulers";
  plan.replications = static_cast<std::size_t>(options.runs);
  plan.seed = options.seed;
  struct Arm {
    std::string name;
    std::string strategy;
    std::string grid;
    bool outage;
  };
  std::vector<Arm> arms;
  for (const auto& strategy : strategies) {
    for (const auto& grid : grids) {
      SessionConfig config = bench::session_for(grid, duration_s);
      config.scheduler = strategy;
      const std::string name = strategy + "_" + grid.name;
      arms.push_back({name, strategy, grid.name, false});
      plan.settings.push_back({name, std::move(config)});
    }
    if (outage_fits) {
      SessionConfig config = bench::session_for(outage_grid, duration_s);
      config.scheduler = strategy;
      char spec[128];
      std::snprintf(spec, sizeof spec, "%g link_down path0; %g link_up path0",
                    t_down, t_down + outage_s);
      config.faults = spec;
      const std::string name = strategy + "_" + outage_grid.name + "_outage";
      arms.push_back({name, strategy, outage_grid.name, true});
      plan.settings.push_back({name, std::move(config)});
    }
  }

  plan.metrics = [](const SessionResult& result, std::size_t, std::size_t) {
    const auto generated = static_cast<double>(result.packets_generated);
    // Unique stream packets the client recorded (the RedundancyFilter
    // already suppressed duplicate copies for needs-dedup policies).
    const auto delivered = static_cast<double>(result.trace.entries().size());
    // Wire copies: every generated packet is dispatched once (DMP never
    // drops from the shared queue) plus whatever redundancy the policy
    // added.  Packets still queued at drain end make this a slight
    // overcount; with the standard drain window that count is ~0.
    const double wire = generated +
                        static_cast<double>(result.duplicates_sent) +
                        static_cast<double>(result.parity_sent);
    std::vector<std::pair<std::string, double>> m;
    m.emplace_back("f_tau2", result.trace.late_fraction_playback_order(
                                 2.0, result.packets_generated));
    m.emplace_back("f_tau4", result.trace.late_fraction_playback_order(
                                 4.0, result.packets_generated));
    m.emplace_back("delivered_fraction",
                   generated > 0.0 ? delivered / generated : 1.0);
    m.emplace_back("send_overhead", generated > 0.0 ? wire / generated : 1.0);
    m.emplace_back("goodput_overhead",
                   delivered > 0.0 ? wire / delivered : 1.0);
    m.emplace_back("duplicates_sent",
                   static_cast<double>(result.duplicates_sent));
    m.emplace_back("parity_sent", static_cast<double>(result.parity_sent));
    m.emplace_back("duplicates_suppressed",
                   static_cast<double>(result.duplicates_suppressed));
    m.emplace_back("parity_recovered",
                   static_cast<double>(result.parity_recovered));
    return m;
  };

  const auto report = exp::ExperimentRunner(options.threads).run(plan);

  CsvWriter csv(bench_output_dir() + "/schedulers.csv",
                {"setting", "strategy", "grid", "outage", "f_tau2", "f_tau4",
                 "goodput_overhead", "send_overhead", "delivered_fraction",
                 "duplicates_sent", "parity_sent", "duplicates_suppressed",
                 "parity_recovered"});
  std::printf("\n%-22s %10s %10s %10s %10s %8s %8s\n", "setting", "f(tau=2)",
              "f(tau=4)", "overhead", "delivered", "dups", "parity");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& arm = arms[i];
    const auto& setting = report.settings[i];
    const auto get = [&setting](const char* name) {
      return setting.find(name)->ci().mean;
    };
    std::printf("%-22s %10.4g %10.4g %10.4f %10.4g %8.1f %8.1f\n",
                arm.name.c_str(), get("f_tau2"), get("f_tau4"),
                get("goodput_overhead"), get("delivered_fraction"),
                get("duplicates_sent"), get("parity_sent"));
    csv.row({arm.name, arm.strategy, arm.grid, arm.outage ? "1" : "0",
             CsvWriter::num(get("f_tau2")), CsvWriter::num(get("f_tau4")),
             CsvWriter::num(get("goodput_overhead")),
             CsvWriter::num(get("send_overhead")),
             CsvWriter::num(get("delivered_fraction")),
             CsvWriter::num(get("duplicates_sent")),
             CsvWriter::num(get("parity_sent")),
             CsvWriter::num(get("duplicates_suppressed")),
             CsvWriter::num(get("parity_recovered"))});
  }

  // The headline comparison: does buying redundancy (goodput overhead)
  // actually lower the late fraction when a path dies mid-stream?
  if (outage_fits) {
    const auto find_arm = [&](const std::string& name) -> std::size_t {
      for (std::size_t i = 0; i < arms.size(); ++i) {
        if (arms[i].name == name) return i;
      }
      return arms.size();
    };
    const std::size_t p = find_arm("pull_4-4_outage");
    const std::size_t r = find_arm("redundant_4-4_outage");
    if (p < arms.size() && r < arms.size()) {
      const double f_pull = report.settings[p].find("f_tau4")->ci().mean;
      const double f_red = report.settings[r].find("f_tau4")->ci().mean;
      const double cost =
          report.settings[r].find("goodput_overhead")->ci().mean;
      std::printf("\noutage at K=2: f(tau=4) pull=%.4g redundant=%.4g "
                  "(%s) at %.3fx goodput overhead\n",
                  f_pull, f_red,
                  f_red <= f_pull ? "redundancy pays" : "redundancy did NOT pay",
                  cost);
    }
  }
  std::printf("reading: pull sends each packet once (overhead 1.0) and pays "
              "for outages in lateness; redundant/parity spend idle path "
              "capacity on extra copies to flatten the outage spike.\n");
  std::printf("CSV: %s/schedulers.csv\n", bench_output_dir().c_str());
  std::printf("JSON: %s\n", report.write_json().c_str());
  return 0;
}
