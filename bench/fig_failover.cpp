// Failover study (unlocked by the fault injector): required startup delay
// vs. mid-stream outage duration for K = 1, 2, 3 paths.
//
// Every setting streams mu = 20 pkts/s over K Table-1 config-4 paths; at
// 20% of the stream (>= 5 s in) path0 goes dark for D seconds (forward and
// reverse bottleneck down, so the sender's only signal is its RTO timer).
// Single-path streaming must ride out the whole outage on retransmission
// backoff — its required startup delay grows with D — while DMP reclaims
// the dead sender's unsent share and the survivors absorb the load, so the
// required delay stays near its fault-free value.  One experiment-plan
// setting per (K, D) cell; DMP_FAULTS is ignored here because the outage
// schedule IS the experiment.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

using namespace dmp;

namespace {

struct DelayStats {
  double required_tau_s = 0.0;
  double delivered_fraction = 1.0;
};

// Smallest startup delay that would have made playback smooth: packet n
// plays at n/mu + tau, so tau must cover max_n(arrival_n - n/mu).  Packets
// that never arrived (drain too short, or a path that never recovered)
// clamp the answer to `cap_s` and show up in delivered_fraction.
DelayStats delay_stats(const StreamTrace& trace, std::int64_t total,
                       double cap_s) {
  DelayStats stats;
  if (total <= 0) return stats;
  std::vector<bool> got(static_cast<std::size_t>(total), false);
  for (const auto& e : trace.entries()) {
    if (e.packet_number < 0 || e.packet_number >= total) continue;
    got[static_cast<std::size_t>(e.packet_number)] = true;
    stats.required_tau_s =
        std::max(stats.required_tau_s,
                 e.arrived.to_seconds() -
                     static_cast<double>(e.packet_number) / trace.mu());
  }
  std::int64_t delivered = 0;
  for (const bool g : got) delivered += g;
  stats.delivered_fraction =
      static_cast<double>(delivered) / static_cast<double>(total);
  if (delivered < total) stats.required_tau_s = cap_s;
  stats.required_tau_s = std::min(stats.required_tau_s, cap_s);
  return stats;
}

}  // namespace

int main() {
  const auto options = exp::bench_options();
  const double duration_s = options.duration_s;
  const double t_down = std::max(5.0, 0.2 * duration_s);
  bench::banner("Failover: required startup delay vs outage duration "
                "(mu=20, Table-1 config 4)");
  std::printf("(outage starts at %.0f s of a %.0f s stream)\n\n", t_down,
              duration_s);

  const std::vector<int> path_counts{1, 2, 3};
  std::vector<double> outages{0.0, 2.0, 5.0, 10.0};
  // Keep the outage inside the stream on short smoke runs.
  outages.erase(std::remove_if(outages.begin(), outages.end(),
                               [&](double d) {
                                 return t_down + d >= duration_s;
                               }),
                outages.end());
  const double cap_s = duration_s + 60.0;

  exp::ExperimentPlan plan;
  plan.name = "fig_failover";
  plan.replications = static_cast<std::size_t>(options.runs);
  plan.seed = options.seed;
  for (const int k : path_counts) {
    for (const double d : outages) {
      SessionConfig config;
      config.path_configs.assign(static_cast<std::size_t>(k),
                                 table1_config(4));
      config.num_flows = static_cast<std::size_t>(k);
      config.scheme = StreamScheme::kDmp;
      // DMP_SCHED applies: rerun the failover study under any dispatch
      // policy (the default "pull" reproduces the original figure).
      config.scheduler = options.sched;
      config.mu_pps = 20.0;
      config.duration_s = duration_s;
      if (d > 0.0) {
        char spec[128];
        std::snprintf(spec, sizeof spec,
                      "%g link_down path0; %g link_up path0", t_down,
                      t_down + d);
        config.faults = spec;
      }
      char name[32];
      std::snprintf(name, sizeof name, "K%d_D%g", k, d);
      plan.settings.push_back({name, config});
    }
  }
  plan.metrics = [cap_s](const SessionResult& result, std::size_t,
                         std::size_t) {
    const auto stats =
        delay_stats(result.trace, result.packets_generated, cap_s);
    std::vector<std::pair<std::string, double>> metrics;
    metrics.emplace_back("required_tau_s", stats.required_tau_s);
    metrics.emplace_back("delivered_fraction", stats.delivered_fraction);
    metrics.emplace_back(
        "late_fraction_tau4",
        result.trace.late_fraction_playback_order(4.0,
                                                  result.packets_generated));
    metrics.emplace_back("fault_events",
                         static_cast<double>(result.fault_events_fired));
    return metrics;
  };

  const auto report = exp::ExperimentRunner(options.threads).run(plan);

  CsvWriter csv(bench_output_dir() + "/fig_failover.csv",
                {"k", "outage_s", "required_tau_s", "required_tau_hw",
                 "late_fraction_tau4", "delivered_fraction"});
  std::printf("%4s %10s %18s %16s %12s\n", "K", "outage(s)", "required tau",
              "f(tau=4)", "delivered");
  std::size_t idx = 0;
  for (const int k : path_counts) {
    for (const double d : outages) {
      const auto& setting = report.settings[idx++];
      const auto tau_ci = setting.find("required_tau_s")->ci();
      const auto late = setting.find("late_fraction_tau4")->ci().mean;
      const auto delivered = setting.find("delivered_fraction")->ci().mean;
      std::printf("%4d %10.0f %11.2f +/- %4.2f %16.4g %12.4g\n", k, d,
                  tau_ci.mean, tau_ci.half_width, late, delivered);
      csv.row({std::to_string(k), CsvWriter::num(d),
               CsvWriter::num(tau_ci.mean), CsvWriter::num(tau_ci.half_width),
               CsvWriter::num(late), CsvWriter::num(delivered)});
    }
    std::printf("\n");
  }

  std::printf("reading: K = 1 pays for the whole outage in startup delay "
              "(the RTO backoff rides across it); K >= 2 reclaims the dead "
              "path's share, so the required delay stays near its "
              "fault-free value.\n");
  std::printf("CSV: %s/fig_failover.csv\n", bench_output_dir().c_str());
  std::printf("JSON: %s\n", report.write_json().c_str());
  return 0;
}
