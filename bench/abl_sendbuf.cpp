// Ablation: TCP send-buffer size — the knob DMP's implicit bandwidth
// inference rests on (Section 3: a sender "fetches packets ... until it
// cannot send", i.e. until this buffer fills).  Too small starves the
// window on clean paths; too large strands stale packets behind a
// congested path (head-of-line blocking invisible to the model).
// One runner setting per buffer size; the sweep fans out over DMP_THREADS.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  bench::banner("Ablation: send-buffer size (Setting 2-2, mu=50)");

  CsvWriter csv(bench_output_dir() + "/abl_sendbuf.csv",
                {"send_buffer_pkts", "tau_s", "late_fraction", "share1"});

  const bench::ValidationSetting setting{"2-2", 2, 2, 50.0, false};
  const double duration = std::min(options.duration_s, 1500.0);
  const std::vector<double> taus{4.0, 6.0, 10.0};
  const std::vector<std::size_t> buffers{2, 4, 8, 16, 32, 64, 128, 256};

  exp::ExperimentPlan plan;
  plan.name = "abl_sendbuf";
  plan.seed = options.seed;
  plan.replications = 1;
  for (std::size_t buffer : buffers) {
    auto config = bench::session_for(setting, duration);
    config.video_tcp.send_buffer_packets = buffer;
    plan.settings.push_back({std::to_string(buffer), config});
  }
  plan.metrics = [&taus](const SessionResult& result, std::size_t,
                         std::size_t) {
    std::vector<std::pair<std::string, double>> m;
    for (double tau : taus) {
      m.emplace_back("f_tau" + std::to_string(static_cast<int>(tau)),
                     result.trace.late_fraction_playback_order(
                         tau, result.packets_generated));
    }
    m.emplace_back("share1", result.paths[0].share);
    return m;
  };

  std::printf("%8s %12s %12s %12s %8s\n", "buffer", "f(tau=4)", "f(tau=6)",
              "f(tau=10)", "split");
  const auto consume = [&](std::size_t s, std::size_t,
                           const exp::ReplicationOutcome& outcome) {
    if (!outcome.ok) {
      std::printf("%8zu  FAILED: %s\n", buffers[s], outcome.error.c_str());
      return;
    }
    const auto& result = outcome.result;
    std::vector<double> f;
    for (double tau : taus) {
      f.push_back(result.trace.late_fraction_playback_order(
          tau, result.packets_generated));
      csv.row({std::to_string(buffers[s]), CsvWriter::num(tau),
               CsvWriter::num(f.back()),
               CsvWriter::num(result.paths[0].share)});
    }
    std::printf("%8zu %12.5g %12.5g %12.5g %7.0f%%\n", buffers[s], f[0], f[1],
                f[2], result.paths[0].share * 100);
  };
  const auto report = exp::ExperimentRunner(options.threads).run(plan, consume);

  std::printf("\nreading: a handful of packets suffices; very deep buffers "
              "slightly hurt timeliness by committing packets to a path "
              "before its congestion is visible.\n");
  const std::string json = report.write_json();
  std::printf("CSV: %s/abl_sendbuf.csv\nreport: %s (%.1f s wall)\n",
              bench_output_dir().c_str(), json.c_str(), report.wall_s);
  return 0;
}
