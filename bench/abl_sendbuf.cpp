// Ablation: TCP send-buffer size — the knob DMP's implicit bandwidth
// inference rests on (Section 3: a sender "fetches packets ... until it
// cannot send", i.e. until this buffer fills).  Too small starves the
// window on clean paths; too large strands stale packets behind a
// congested path (head-of-line blocking invisible to the model).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace dmp;

int main() {
  const bench::Knobs knobs;
  bench::banner("Ablation: send-buffer size (Setting 2-2, mu=50)");

  CsvWriter csv(bench_output_dir() + "/abl_sendbuf.csv",
                {"send_buffer_pkts", "tau_s", "late_fraction", "share1"});

  const bench::ValidationSetting setting{"2-2", 2, 2, 50.0, false};
  const double duration = std::min(knobs.duration_s, 1500.0);
  const std::vector<double> taus{4.0, 6.0, 10.0};

  std::printf("%8s %12s %12s %12s %8s\n", "buffer", "f(tau=4)", "f(tau=6)",
              "f(tau=10)", "split");
  for (std::size_t buffer : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    auto config = bench::session_for(setting, duration, knobs.seed + 77);
    config.video_tcp.send_buffer_packets = buffer;
    const auto result = run_session(config);
    std::vector<double> f;
    for (double tau : taus) {
      f.push_back(result.trace.late_fraction_playback_order(
          tau, result.packets_generated));
      csv.row({std::to_string(buffer), CsvWriter::num(tau),
               CsvWriter::num(f.back()),
               CsvWriter::num(result.paths[0].share)});
    }
    std::printf("%8zu %12.5g %12.5g %12.5g %7.0f%%\n", buffer, f[0], f[1],
                f[2], result.paths[0].share * 100);
  }
  std::printf("\nreading: a handful of packets suffices; very deep buffers "
              "slightly hurt timeliness by committing packets to a path "
              "before its congestion is visible.\n");
  std::printf("CSV: %s/abl_sendbuf.csv\n", bench_output_dir().c_str());
  return 0;
}
