// Helpers for the Section-7 parameter-space studies: constructing
// homogeneous path sets with a prescribed sigma_a/mu ratio.
//
// All rates in the per-flow chain scale with 1/R, so the achievable
// throughput factorizes as sigma(p, R, TO) = sigma(p, 1, TO) / R — which
// gives closed forms for "vary R at fixed mu" and "vary mu at fixed R",
// the two ways the paper sweeps sigma_a/mu.
#pragma once

#include "model/composed_chain.hpp"
#include "model/required_delay.hpp"

namespace dmp::bench {

inline TcpChainParams chain_of(double p, double rtt_s, double to) {
  TcpChainParams params;
  params.loss_rate = p;
  params.rtt_s = rtt_s;
  params.to_ratio = to;
  params.wmax = 20;
  params.ack_every = 1;
  return params;
}

// Unit-RTT throughput sigma(p, 1, TO) in packets/s.
inline double unit_rtt_throughput(double p, double to) {
  return TcpFlowChain(chain_of(p, 1.0, to)).achievable_throughput_pps();
}

// RTT such that K homogeneous paths give sigma_a / mu = ratio.
inline double rtt_for_ratio(double p, double to, double mu, double ratio,
                            int k = 2) {
  return static_cast<double>(k) * unit_rtt_throughput(p, to) / (ratio * mu);
}

// mu such that K homogeneous paths at the given RTT give sigma_a/mu = ratio.
inline double mu_for_ratio(double p, double rtt_s, double to, double ratio,
                           int k = 2) {
  return static_cast<double>(k) * unit_rtt_throughput(p, to) /
         (rtt_s * ratio);
}

inline ComposedParams homogeneous_setup(double p, double rtt_s, double to,
                                        double mu) {
  ComposedParams params;
  params.flows = {chain_of(p, rtt_s, to), chain_of(p, rtt_s, to)};
  params.mu_pps = mu;
  return params;
}

}  // namespace dmp::bench
