// Fig. 8: diminishing gain from increasing sigma_a/mu.
// p = 0.02, TO = 4, mu = 25 pkts/s; sigma_a/mu in {1.2..2.0} set by varying
// the RTT; fraction of late packets vs startup delay 2..30 s.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const bench::Knobs knobs;
  const double p = 0.02, to = 4.0, mu = 25.0;
  bench::banner("Fig. 8: diminishing gain from sigma_a/mu "
                "(p=0.02, TO=4, mu=25)");

  CsvWriter csv(bench_output_dir() + "/fig8_diminishing_gain.csv",
                {"ratio", "rtt_ms", "tau_s", "late_fraction"});

  const std::vector<double> ratios{1.2, 1.4, 1.6, 1.8, 2.0};
  const std::vector<double> taus{2,  4,  6,  8,  10, 12, 14, 16,
                                 18, 20, 22, 24, 26, 28, 30};

  std::printf("%6s", "tau");
  for (double ratio : ratios) std::printf("   ratio=%.1f", ratio);
  std::printf("\n");

  std::vector<std::vector<double>> table(taus.size(),
                                         std::vector<double>(ratios.size()));
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    const double rtt = bench::rtt_for_ratio(p, to, mu, ratios[r]);
    for (std::size_t t = 0; t < taus.size(); ++t) {
      ComposedParams params = bench::homogeneous_setup(p, rtt, to, mu);
      params.tau_s = taus[t];
      DmpModelMonteCarlo mc(params, knobs.seed + 100 * r + t);
      const auto result = mc.run(knobs.mc_max, knobs.mc_max / 10);
      table[t][r] = result.late_fraction;
      csv.row({CsvWriter::num(ratios[r]), CsvWriter::num(rtt * 1e3),
               CsvWriter::num(taus[t]), CsvWriter::num(result.late_fraction)});
    }
  }
  for (std::size_t t = 0; t < taus.size(); ++t) {
    std::printf("%6.0f", taus[t]);
    for (std::size_t r = 0; r < ratios.size(); ++r) {
      std::printf(" %11.3g", table[t][r]);
    }
    std::printf("\n");
  }

  std::printf("\nexpected shape (paper): dramatic improvement from 1.2 to "
              "1.4, diminishing beyond\n");
  std::printf("CSV: %s/fig8_diminishing_gain.csv\n",
              bench_output_dir().c_str());
  return 0;
}
