// Fig. 8: diminishing gain from increasing sigma_a/mu.
// p = 0.02, TO = 4, mu = 25 pkts/s; sigma_a/mu in {1.2..2.0} set by varying
// the RTT; fraction of late packets vs startup delay 2..30 s.  One runner
// work item per ratio (15 Monte-Carlo runs each).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  const double p = 0.02, to = 4.0, mu = 25.0;
  bench::banner("Fig. 8: diminishing gain from sigma_a/mu "
                "(p=0.02, TO=4, mu=25)");

  CsvWriter csv(bench_output_dir() + "/fig8_diminishing_gain.csv",
                {"ratio", "rtt_ms", "tau_s", "late_fraction"});

  const std::vector<double> ratios{1.2, 1.4, 1.6, 1.8, 2.0};
  const std::vector<double> taus{2,  4,  6,  8,  10, 12, 14, 16,
                                 18, 20, 22, 24, 26, 28, 30};

  std::printf("%6s", "tau");
  for (double ratio : ratios) std::printf("   ratio=%.1f", ratio);
  std::printf("\n");

  struct Column {
    double rtt;
    std::vector<double> f;  // one per tau
  };
  // With DMP_MODEL_SHARDS the parallelism moves inside each estimate (the
  // sharded engine runs its shards on DMP_THREADS workers), so the outer
  // sweep goes serial instead of oversubscribing.
  const std::size_t outer_threads =
      options.model_shards > 0 ? 1 : options.threads;
  const auto columns =
      exp::ExperimentRunner(outer_threads).map(ratios.size(), [&](std::size_t r) {
        Column column;
        column.rtt = bench::rtt_for_ratio(p, to, mu, ratios[r]);
        const auto mc_seeds = exp::mc_stream(options.seed, r);
        for (std::size_t t = 0; t < taus.size(); ++t) {
          ComposedParams params =
              bench::homogeneous_setup(p, column.rtt, to, mu);
          params.tau_s = taus[t];
          if (options.model_shards > 0) {
            const DmpModelMonteCarlo mc(params, mc_seeds.at(t),
                                        SamplerMode::kAlias);
            const std::uint64_t per_shard = std::max<std::uint64_t>(
                1, options.mc_max / options.model_shards);
            column.f.push_back(
                mc.run_sharded(options.model_shards, per_shard,
                               DmpModelMonteCarlo::kAutoWarmup,
                               options.threads)
                    .late_fraction);
          } else {
            DmpModelMonteCarlo mc(params, mc_seeds.at(t));
            column.f.push_back(
                mc.run(options.mc_max, options.mc_max / 10).late_fraction);
          }
        }
        return column;
      });

  for (std::size_t r = 0; r < ratios.size(); ++r) {
    for (std::size_t t = 0; t < taus.size(); ++t) {
      csv.row({CsvWriter::num(ratios[r]), CsvWriter::num(columns[r].rtt * 1e3),
               CsvWriter::num(taus[t]), CsvWriter::num(columns[r].f[t])});
    }
  }
  for (std::size_t t = 0; t < taus.size(); ++t) {
    std::printf("%6.0f", taus[t]);
    for (std::size_t r = 0; r < ratios.size(); ++r) {
      std::printf(" %11.3g", columns[r].f[t]);
    }
    std::printf("\n");
  }

  std::printf("\nexpected shape (paper): dramatic improvement from 1.2 to "
              "1.4, diminishing beyond\n");
  std::printf("CSV: %s/fig8_diminishing_gain.csv\n",
              bench_output_dir().c_str());
  return 0;
}
