// Shared driver for the Fig. 4 / Fig. 5 validation figures:
//   (a) out-of-order effect — scatter of the late fraction in arrival
//       order vs. playback order, tau in {4,6,8,10} s, one point per run;
//   (b) fraction of late packets vs. startup delay — simulation (mean and
//       95% CI over runs) against the analytical model.
#pragma once

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/composed_chain.hpp"

namespace dmp::bench {

inline void run_validation_figure(const ValidationSetting& setting,
                                  const std::string& figure_name) {
  const Knobs knobs;
  banner(figure_name + " — Setting " + setting.name +
         (setting.correlated ? " (correlated paths)" : " (independent paths)"));
  std::printf("(%lld runs x %.0f s, mu = %.0f pkts/s)\n",
              static_cast<long long>(knobs.runs), knobs.duration_s,
              setting.mu_pps);

  const std::vector<double> scatter_taus{4.0, 6.0, 8.0, 10.0};
  const std::vector<double> curve_taus{3, 4, 5, 6, 7, 8, 9, 10, 11};

  CsvWriter scatter_csv(
      bench_output_dir() + "/" + figure_name + "a_out_of_order.csv",
      {"setting", "run", "tau_s", "late_playback_order", "late_arrival_order"});
  CsvWriter curve_csv(
      bench_output_dir() + "/" + figure_name + "b_late_vs_tau.csv",
      {"setting", "tau_s", "sim_mean", "sim_ci_half", "model"});

  // --- simulation replications (one trace serves every tau) ---
  std::vector<std::vector<double>> sim_f(curve_taus.size());
  std::printf("\n(a) out-of-order effect (playback-order vs arrival-order "
              "late fractions)\n");
  std::printf("%4s %8s %14s %14s\n", "run", "tau", "playback", "arrival");
  for (std::int64_t run = 0; run < knobs.runs; ++run) {
    auto config =
        session_for(setting, knobs.duration_s,
                    knobs.seed + 1000 + static_cast<std::uint64_t>(run) * 97);
    if ((knobs.obs || knobs.trace) && run == 0) {
      config.obs.enabled = knobs.obs;
      config.obs.flight_recorder = knobs.trace;
      config.obs.output_dir = bench_output_dir();
      config.obs.prefix = figure_name + "_" + setting.name + "_obs";
      config.obs.probe_interval_s = knobs.obs_probe_interval_s;
    }
    const auto result = run_session(config);
    if (!result.report_path.empty()) {
      std::printf("obs artifacts: %s", result.report_path.c_str());
      if (!result.probe_csv_path.empty()) {
        std::printf(", %s", result.probe_csv_path.c_str());
      }
      std::printf(", %s\n", result.events_path.c_str());
    }
    if (!result.trace_path.empty()) {
      std::printf("flight trace: %s\n", result.trace_path.c_str());
    }
    for (double tau : scatter_taus) {
      const double fp = result.trace.late_fraction_playback_order(
          tau, result.packets_generated);
      const double fa = result.trace.late_fraction_arrival_order(
          tau, result.packets_generated);
      std::printf("%4lld %8.0f %14.6g %14.6g\n", static_cast<long long>(run),
                  tau, fp, fa);
      scatter_csv.row({setting.name, std::to_string(run), CsvWriter::num(tau),
                       CsvWriter::num(fp), CsvWriter::num(fa)});
    }
    for (std::size_t i = 0; i < curve_taus.size(); ++i) {
      sim_f[i].push_back(result.trace.late_fraction_playback_order(
          curve_taus[i], result.packets_generated));
    }
  }

  // --- model curve (backlogged-probe parameters; see DESIGN.md) ---
  const auto model_base = model_params_for(setting, knobs.seed + 5000);
  std::printf("\nmodel path parameters: ");
  for (const auto& flow : model_base.flows) {
    std::printf("(p=%.4f R=%.0fms TO=%.2f) ", flow.loss_rate,
                flow.rtt_s * 1e3, flow.to_ratio);
  }
  double sigma_a = 0.0;
  for (const auto& flow : model_base.flows) {
    sigma_a += TcpFlowChain(flow).achievable_throughput_pps();
  }
  std::printf("sigma_a/mu=%.2f\n", sigma_a / setting.mu_pps);

  std::printf("\n(b) fraction of late packets vs startup delay\n");
  std::printf("%6s %22s %14s %10s\n", "tau", "sim (95%% CI)", "model",
              "fm/fs");
  // Below this the simulation cannot distinguish f from 0.
  const double sim_resolution =
      1.0 / (setting.mu_pps * knobs.duration_s *
             static_cast<double>(knobs.runs));
  for (std::size_t i = 0; i < curve_taus.size(); ++i) {
    ComposedParams params = model_base;
    params.tau_s = curve_taus[i];
    DmpModelMonteCarlo mc(params, knobs.seed + 7000 + i);
    const auto model = mc.run(knobs.mc_max, knobs.mc_max / 10);
    const auto ci = confidence_interval(sim_f[i]);
    if (ci.mean > 0.0) {
      std::printf("%6.0f %12.5g +/- %-8.2g %14.6g %10.3g\n", curve_taus[i],
                  ci.mean, ci.half_width, model.late_fraction,
                  model.late_fraction / ci.mean);
    } else {
      std::printf("%6.0f %12s +/- %-8s %14.6g %10s\n", curve_taus[i],
                  "< sim res.", "", model.late_fraction,
                  model.late_fraction < 10.0 * sim_resolution ? "ok" : ">10x");
    }
    curve_csv.row({setting.name, CsvWriter::num(curve_taus[i]),
                   CsvWriter::num(ci.mean), CsvWriter::num(ci.half_width),
                   CsvWriter::num(model.late_fraction)});
  }
  std::printf("\nmatch criterion (paper): model within sim CI, or "
              "0.1 < fm/fs < 10\n");
  std::printf("CSV: %s/%s{a,b}_*.csv\n", bench_output_dir().c_str(),
              figure_name.c_str());
}

}  // namespace dmp::bench
