// Shared driver for the Fig. 4 / Fig. 5 validation figures:
//   (a) out-of-order effect — scatter of the late fraction in arrival
//       order vs. playback order, tau in {4,6,8,10} s, one point per run;
//   (b) fraction of late packets vs. startup delay — simulation (mean and
//       95% CI over runs) against the analytical model.
//
// Replications run on the exp::ExperimentRunner worker pool (DMP_THREADS);
// results are consumed in replication order, so the printed table, the
// CSVs and the BENCH_<figure>.json report are identical at any thread
// count.
#pragma once

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/composed_chain.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "obs/divergence/divergence.hpp"

namespace dmp::bench {

inline void run_validation_figure(const ValidationSetting& setting,
                                  const std::string& figure_name) {
  const auto options = exp::bench_options();
  // Non-droptail runs get their own divergence-series identity
  // ("fig4_pie", ...) so per-qdisc artifacts from the same bench binary
  // never collide with the golden droptail series.
  const QdiscSpec qdisc_spec = QdiscSpec::parse(options.qdisc);
  const std::string qdisc_tag =
      qdisc_spec.droptail() ? "" : std::string("_") + qdisc_spec.kind_name();
  banner(figure_name + " — Setting " + setting.name +
         (setting.correlated ? " (correlated paths)" : " (independent paths)") +
         (qdisc_spec.droptail() ? "" : " [qdisc " + options.qdisc + "]"));
  std::printf("(%lld runs x %.0f s, mu = %.0f pkts/s, %zu threads)\n",
              static_cast<long long>(options.runs), options.duration_s,
              setting.mu_pps, exp::ExperimentRunner(options.threads).threads());

  const std::vector<double> scatter_taus{4.0, 6.0, 8.0, 10.0};
  const std::vector<double> curve_taus{3, 4, 5, 6, 7, 8, 9, 10, 11};

  CsvWriter scatter_csv(
      bench_output_dir() + "/" + figure_name + "a_out_of_order.csv",
      {"setting", "run", "tau_s", "late_playback_order", "late_arrival_order"});
  CsvWriter curve_csv(
      bench_output_dir() + "/" + figure_name + "b_late_vs_tau.csv",
      {"setting", "tau_s", "sim_mean", "sim_ci_half", "model"});

  // --- simulation replications (one trace serves every tau) ---
  auto plan = plan_for(figure_name, {setting}, options, options.duration_s);
  plan.metrics = [&curve_taus](const SessionResult& result, std::size_t,
                               std::size_t) {
    std::vector<std::pair<std::string, double>> m;
    for (double tau : curve_taus) {
      m.emplace_back("f_tau" + std::to_string(static_cast<int>(tau)),
                     result.trace.late_fraction_playback_order(
                         tau, result.packets_generated));
    }
    return m;
  };

  std::printf("\n(a) out-of-order effect (playback-order vs arrival-order "
              "late fractions)\n");
  std::printf("%4s %8s %14s %14s\n", "run", "tau", "playback", "arrival");
  std::vector<std::vector<double>> sim_f(curve_taus.size());
  const auto consume = [&](std::size_t, std::size_t rep,
                           const exp::ReplicationOutcome& outcome) {
    if (!outcome.ok) {
      std::printf("%4zu  FAILED: %s\n", rep, outcome.error.c_str());
      return;
    }
    const auto& result = outcome.result;
    if (!result.report_path.empty()) {
      std::printf("obs artifacts: %s", result.report_path.c_str());
      if (!result.probe_csv_path.empty()) {
        std::printf(", %s", result.probe_csv_path.c_str());
      }
      std::printf(", %s\n", result.events_path.c_str());
    }
    if (!result.trace_path.empty()) {
      std::printf("flight trace: %s\n", result.trace_path.c_str());
    }
    for (double tau : scatter_taus) {
      const double fp = result.trace.late_fraction_playback_order(
          tau, result.packets_generated);
      const double fa = result.trace.late_fraction_arrival_order(
          tau, result.packets_generated);
      std::printf("%4zu %8.0f %14.6g %14.6g\n", rep, tau, fp, fa);
      scatter_csv.row({setting.name, std::to_string(rep), CsvWriter::num(tau),
                       CsvWriter::num(fp), CsvWriter::num(fa)});
    }
    for (std::size_t i = 0; i < curve_taus.size(); ++i) {
      sim_f[i].push_back(result.trace.late_fraction_playback_order(
          curve_taus[i], result.packets_generated));
    }
  };
  auto report = exp::ExperimentRunner(options.threads).run(plan, consume);

  // --- model curve (backlogged-probe parameters; see DESIGN.md) ---
  const auto model_base =
      model_params_for(setting, exp::probe_stream(options.seed), 1500.0,
                       options.qdisc);
  std::printf("\nmodel path parameters: ");
  for (const auto& flow : model_base.flows) {
    std::printf("(p=%.4f R=%.0fms TO=%.2f) ", flow.loss_rate,
                flow.rtt_s * 1e3, flow.to_ratio);
  }
  double sigma_a = 0.0;
  for (const auto& flow : model_base.flows) {
    sigma_a += TcpFlowChain(flow).achievable_throughput_pps();
  }
  std::printf("sigma_a/mu=%.2f\n", sigma_a / setting.mu_pps);

  std::printf("\n(b) fraction of late packets vs startup delay\n");
  std::printf("%6s %22s %14s %10s\n", "tau", "sim (95% CI)", "model",
              "fm/fs");
  // Below this the simulation cannot distinguish f from 0.
  const double sim_resolution =
      1.0 / (setting.mu_pps * options.duration_s *
             static_cast<double>(options.runs));
  const auto mc_seeds = exp::mc_stream(options.seed);
  // Divergence series: the paper's Section-5 match criterion as a
  // recorded tolerance — within the sim's 95% CI, within the sim
  // resolution floor, or within a decade of the simulated mean.
  obs::DivergenceSeries divergence;
  divergence.name = figure_name + qdisc_tag;
  divergence.metric = "late_fraction_playback";
  divergence.x_label = "tau_s";
  divergence.tolerance.abs = sim_resolution;
  divergence.tolerance.ratio = 10.0;
  divergence.tolerance.within_ci = true;
  for (std::size_t i = 0; i < curve_taus.size(); ++i) {
    ComposedParams params = model_base;
    params.tau_s = curve_taus[i];
    DmpModelMonteCarlo mc(params, mc_seeds.at(i));
    const auto model = mc.run(options.mc_max, options.mc_max / 10);
    const auto ci = confidence_interval(sim_f[i]);
    if (ci.mean > 0.0) {
      std::printf("%6.0f %12.5g +/- %-8.2g %14.6g %10.3g\n", curve_taus[i],
                  ci.mean, ci.half_width, model.late_fraction,
                  model.late_fraction / ci.mean);
    } else {
      std::printf("%6.0f %12s +/- %-8s %14.6g %10s\n", curve_taus[i],
                  "< sim res.", "", model.late_fraction,
                  model.late_fraction < 10.0 * sim_resolution ? "ok" : ">10x");
    }
    curve_csv.row({setting.name, CsvWriter::num(curve_taus[i]),
                   CsvWriter::num(ci.mean), CsvWriter::num(ci.half_width),
                   CsvWriter::num(model.late_fraction)});
    divergence.add(setting.name, curve_taus[i], model.late_fraction, ci.mean,
                   ci.half_width);
  }
  std::printf("\nmatch criterion (paper): model within sim CI, or "
              "0.1 < fm/fs < 10\n");
  const auto dstats = divergence.stats();
  std::printf("divergence: %zu point(s), %zu diverged, rms=%.3g "
              "max|r|=%.3g at %s tau=%g (tol: |r| <= %.3g, CI, or "
              "ratio <= 10)\n",
              dstats.count, dstats.diverged, dstats.rms_residual,
              dstats.max_abs_residual, dstats.worst_setting.c_str(),
              dstats.worst_x, sim_resolution);
  report.divergence.push_back(std::move(divergence));
  const std::string json = report.write_json();
  std::printf("CSV: %s/%s{a,b}_*.csv\nreport: %s (%.1f s wall)\n",
              bench_output_dir().c_str(), figure_name.c_str(), json.c_str(),
              report.wall_s);
}

}  // namespace dmp::bench
