// Engine performance guards (google-benchmark): event-scheduler throughput,
// packet-level simulation speed, per-flow chain construction/solution, and
// the composed Monte-Carlo engine.  Not part of the paper — these keep the
// reproduction pipeline's cost visible and regressions detectable.
#include <benchmark/benchmark.h>

#include "apps/background.hpp"
#include "model/composed_chain.hpp"
#include "sim/scheduler.hpp"
#include "stream/session.hpp"

namespace {

using namespace dmp;

void BM_SchedulerEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    std::int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sched.schedule_after(SimTime::micros(10), tick);
    };
    sched.schedule_at(SimTime::zero(), tick);
    sched.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerEventChurn);

void BM_PacketLevelSession(benchmark::State& state) {
  for (auto _ : state) {
    SessionConfig config;
    config.path_configs = {table1_config(4), table1_config(4)};
    config.mu_pps = 50.0;
    config.duration_s = 30.0;
    config.warmup_s = 5.0;
    config.drain_s = 5.0;
    config.seed = 11;
    const auto result = run_session(config);
    benchmark::DoNotOptimize(result.events_executed);
    state.counters["events_per_s"] = benchmark::Counter(
        static_cast<double>(result.events_executed),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_PacketLevelSession)->Unit(benchmark::kMillisecond);

void BM_TcpChainBuildAndSolve(benchmark::State& state) {
  for (auto _ : state) {
    TcpChainParams params;
    params.loss_rate = 0.02;
    params.rtt_s = 0.2;
    params.to_ratio = 2.0;
    params.wmax = static_cast<int>(state.range(0));
    const TcpFlowChain chain(params);
    benchmark::DoNotOptimize(chain.achievable_throughput_pps());
    state.counters["states"] = static_cast<double>(chain.num_states());
  }
}
BENCHMARK(BM_TcpChainBuildAndSolve)->Arg(12)->Arg(20)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ComposedMonteCarlo(benchmark::State& state) {
  TcpChainParams flow;
  flow.loss_rate = 0.02;
  flow.rtt_s = 0.2;
  flow.to_ratio = 2.0;
  flow.wmax = 20;
  ComposedParams params;
  params.flows = {flow, flow};
  params.mu_pps = 40.0;
  params.tau_s = 10.0;
  for (auto _ : state) {
    DmpModelMonteCarlo mc(params, 5);
    const auto result = mc.run(200'000, 20'000);
    benchmark::DoNotOptimize(result.late_fraction);
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_ComposedMonteCarlo)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
