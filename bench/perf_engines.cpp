// Engine performance guards (google-benchmark): event-scheduler throughput,
// packet-level simulation speed, per-flow chain construction/solution, and
// the composed Monte-Carlo engine.  Not part of the paper — these keep the
// reproduction pipeline's cost visible and regressions detectable.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include "apps/background.hpp"
#include "model/chain_cache.hpp"
#include "model/composed_chain.hpp"
#include "sim/scheduler.hpp"
#include "stream/session.hpp"

namespace {

using namespace dmp;

ComposedParams composed_setup(int kflows) {
  TcpChainParams flow;
  flow.loss_rate = 0.02;
  flow.rtt_s = 0.2;
  flow.to_ratio = 2.0;
  flow.wmax = 20;
  ComposedParams params;
  params.flows.assign(static_cast<std::size_t>(kflows), flow);
  params.mu_pps = 20.0 * kflows;  // keep sigma_a/mu comparable across K
  params.tau_s = 10.0;
  return params;
}

// Raw scheduler churn under each backend: arg 0 = calendar (default),
// arg 1 = heap (the std::push_heap baseline).
void BM_SchedulerEventChurn(benchmark::State& state) {
  const SchedulerBackend backend = state.range(0) == 0
                                       ? SchedulerBackend::kCalendar
                                       : SchedulerBackend::kHeap;
  state.SetLabel(scheduler_backend_name(backend));
  for (auto _ : state) {
    Scheduler sched(backend);
    std::int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sched.schedule_after(SimTime::micros(10), tick);
    };
    sched.schedule_at(SimTime::zero(), tick);
    sched.run();
    benchmark::DoNotOptimize(count);
  }
  bench::set_items_per_iteration(state, 10000);
}
BENCHMARK(BM_SchedulerEventChurn)->DenseRange(0, 1);

void BM_PacketLevelSession(benchmark::State& state) {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.mu_pps = 50.0;
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 5.0;
  config.seed = 11;
  bench::run_session_arm(state, config);
}
BENCHMARK(BM_PacketLevelSession)->Unit(benchmark::kMillisecond);

// The identical session on the binary-heap backend — the ratio against
// BM_PacketLevelSession is the calendar queue's end-to-end win, and
// bench_guard.py checks the calendar arm never regresses below it.
void BM_PacketLevelSessionHeap(benchmark::State& state) {
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.mu_pps = 50.0;
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 5.0;
  config.seed = 11;
  config.des = "heap";
  bench::run_session_arm(state, config);
}
BENCHMARK(BM_PacketLevelSessionHeap)->Unit(benchmark::kMillisecond);

// Same session under each AQM discipline — the ratio against the droptail
// arm above is the qdisc hot-path cost bench_guard.py rates (the lazy
// controller stepping must not slow the per-packet path measurably).
void BM_PacketLevelSessionQdisc(benchmark::State& state) {
  static const char* const kQdiscs[] = {"droptail", "pie", "fq_pie", "codel"};
  SessionConfig config;
  config.path_configs = {table1_config(4), table1_config(4)};
  config.mu_pps = 50.0;
  config.duration_s = 30.0;
  config.warmup_s = 5.0;
  config.drain_s = 5.0;
  config.seed = 11;
  config.qdisc = kQdiscs[state.range(0)];
  state.SetLabel(config.qdisc);
  bench::run_session_arm(state, config);
}
BENCHMARK(BM_PacketLevelSessionQdisc)->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_TcpChainBuildAndSolve(benchmark::State& state) {
  for (auto _ : state) {
    TcpChainParams params;
    params.loss_rate = 0.02;
    params.rtt_s = 0.2;
    params.to_ratio = 2.0;
    params.wmax = static_cast<int>(state.range(0));
    const TcpFlowChain chain(params);
    benchmark::DoNotOptimize(chain.achievable_throughput_pps());
    state.counters["states"] = static_cast<double>(chain.num_states());
  }
}
BENCHMARK(BM_TcpChainBuildAndSolve)->Arg(12)->Arg(20)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// The alias fast path at K = 1..4 flows (K = 2 is the CI-guarded point).
// Items are counted consumptions, as before the fast path existed.
void BM_ComposedMonteCarlo(benchmark::State& state) {
  const ComposedParams params = composed_setup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    DmpModelMonteCarlo mc(params, 5, SamplerMode::kAlias);
    const auto result = mc.run(200'000, 20'000);
    benchmark::DoNotOptimize(result.late_fraction);
  }
  bench::set_items_per_iteration(state, 200'000);
}
BENCHMARK(BM_ComposedMonteCarlo)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The historical event loop (golden-pin compatible) for reference; the
// gap between this and BM_ComposedMonteCarlo/2 is the fast-path speedup.
void BM_ComposedMonteCarloCompat(benchmark::State& state) {
  const ComposedParams params = composed_setup(2);
  for (auto _ : state) {
    DmpModelMonteCarlo mc(params, 5);
    const auto result = mc.run(200'000, 20'000);
    benchmark::DoNotOptimize(result.late_fraction);
  }
  bench::set_items_per_iteration(state, 200'000);
}
BENCHMARK(BM_ComposedMonteCarloCompat)->Unit(benchmark::kMillisecond);

// Deterministic sharded estimation: 8 shards on however many cores the
// runner grants (thread count does not change the output, only the time).
void BM_ComposedMonteCarloSharded(benchmark::State& state) {
  const ComposedParams params = composed_setup(2);
  const DmpModelMonteCarlo mc(params, 5, SamplerMode::kAlias);
  for (auto _ : state) {
    const auto result = mc.run_sharded(8, 200'000);
    benchmark::DoNotOptimize(result.late_fraction);
  }
  bench::set_items_per_iteration(state, 8 * 200'000);
}
BENCHMARK(BM_ComposedMonteCarloSharded)->Unit(benchmark::kMillisecond);

// Stored-video finite-horizon engine on the alias fast path; items are
// consumed video packets.
void BM_StoredVideoMonteCarlo(benchmark::State& state) {
  const ComposedParams params = composed_setup(2);
  constexpr std::int64_t kVideoPackets = 100'000;
  constexpr std::uint64_t kReps = 4;
  for (auto _ : state) {
    const auto result = stored_video_late_fraction(
        params, kVideoPackets, kReps, 7, SamplerMode::kAlias);
    benchmark::DoNotOptimize(result.late_fraction);
  }
  bench::set_items_per_iteration(
      state, static_cast<std::int64_t>(kReps) * kVideoPackets);
}
BENCHMARK(BM_StoredVideoMonteCarlo)->Unit(benchmark::kMillisecond);

// Engine construction against a warm chain cache: after the first
// iteration every probe-style rebuild is a hash lookup, not a BFS + solve.
void BM_ChainCacheConstruction(benchmark::State& state) {
  const ComposedParams params = composed_setup(2);
  for (auto _ : state) {
    DmpModelMonteCarlo mc(params, 5, SamplerMode::kAlias);
    benchmark::DoNotOptimize(&mc);
  }
  state.counters["cache_hits"] =
      static_cast<double>(chain_cache_stats().hits);
}
BENCHMARK(BM_ChainCacheConstruction);

}  // namespace

BENCHMARK_MAIN();
