// Parallel-runner acceptance bench: runs the same experiment plan once on
// one worker and once on the full pool, asserts the deterministic report
// JSON is byte-identical, and records both wall-clocks.  Exit status is
// non-zero if the parallel report diverges from the serial one — this is
// the executable CI smoke for the runner's determinism contract.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  bench::banner("Parallel experiment runner: serial vs parallel determinism "
                "and timing");

  const bench::ValidationSetting setting{"2-2", 2, 2, 50.0, false};
  const double duration = std::min(options.duration_s, 600.0);
  const std::size_t runs =
      std::max<std::size_t>(static_cast<std::size_t>(options.runs), 4);

  exp::ExperimentPlan plan;
  plan.name = "parallel_runner";
  plan.seed = options.seed;
  plan.replications = runs;
  plan.settings.push_back({setting.name,
                           bench::session_for(setting, duration)});

  const exp::ExperimentRunner serial(1);
  const exp::ExperimentRunner parallel(options.threads);
  std::printf("(%zu replications x %.0f s; serial pass, then %zu-thread "
              "pass)\n",
              runs, duration, parallel.threads());

  auto serial_report = serial.run(plan);
  std::printf("serial:   %.2f s wall\n", serial_report.wall_s);
  auto parallel_report = parallel.run(plan);
  std::printf("parallel: %.2f s wall (%zu threads)\n", parallel_report.wall_s,
              parallel.threads());

  const std::string serial_json = serial_report.aggregate_json();
  const std::string parallel_json = parallel_report.aggregate_json();
  const bool identical = serial_json == parallel_json;
  const double speedup = parallel_report.wall_s > 0.0
                             ? serial_report.wall_s / parallel_report.wall_s
                             : 0.0;
  std::printf("speedup: %.2fx; aggregate reports byte-identical: %s\n",
              speedup, identical ? "YES" : "NO");

  const std::string path =
      bench_output_dir() + "/BENCH_parallel_runner.json";
  std::ofstream out(path);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"serial_s\": %.6f, \"parallel_s\": %.6f, "
                "\"threads\": %zu, \"speedup\": %.4f, \"identical\": %s, ",
                serial_report.wall_s, parallel_report.wall_s,
                parallel.threads(), speedup, identical ? "true" : "false");
  out << buf << "\"report\": " << serial_json << "}\n";
  std::printf("report: %s\n", path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: parallel aggregate diverged from serial\n"
                 "serial:   %.120s...\nparallel: %.120s...\n",
                 serial_json.c_str(), parallel_json.c_str());
    return 1;
  }
  return 0;
}
