// Shared plumbing for the reproduction benches: the paper's validation
// settings, replication helpers, and model-parameter estimation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/background.hpp"
#include "model/composed_chain.hpp"
#include "stream/session.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"

namespace dmp::bench {

struct Knobs {
  std::int64_t runs = env_int("DMP_RUNS", 8);
  double duration_s = env_double("DMP_DURATION_S", 3000.0);
  std::uint64_t seed = static_cast<std::uint64_t>(env_int("DMP_SEED", 2007));
  std::uint64_t mc_min =
      static_cast<std::uint64_t>(env_int("DMP_MC_MIN", 400'000));
  std::uint64_t mc_max =
      static_cast<std::uint64_t>(env_int("DMP_MC_MAX", 6'400'000));
  // DMP_OBS=1 attaches the observability layer (metrics registry, gauge
  // probe CSV, event JSONL, RunReport JSON in the bench output dir) to the
  // first replication of each figure.
  bool obs = env_int("DMP_OBS", 0) != 0;
  double obs_probe_interval_s = env_double("DMP_OBS_PROBE_S", 1.0);
  // DMP_TRACE=1 additionally attaches the per-packet flight recorder to
  // the first replication and writes `<prefix>_trace.jsonl` (inspect with
  // `trace_query`).  Works with or without DMP_OBS.
  bool trace = env_int("DMP_TRACE", 0) != 0;
};

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// The paper's validation settings: Table-1 configuration pair + playback
// rate (Table 2 for independent paths, Table 3 for correlated paths).
struct ValidationSetting {
  std::string name;
  int config_a;
  int config_b;    // == config_a for homogeneous / correlated settings
  double mu_pps;
  bool correlated; // share one bottleneck (Fig. 6) vs. two paths (Fig. 3)
};

inline std::vector<ValidationSetting> independent_settings() {
  return {
      {"1-1", 1, 1, 50.0, false}, {"2-2", 2, 2, 50.0, false},
      {"3-3", 3, 3, 30.0, false}, {"4-4", 4, 4, 80.0, false},
      {"1-2", 1, 2, 50.0, false}, {"1-3", 1, 3, 40.0, false},
      {"2-3", 2, 3, 40.0, false}, {"3-4", 3, 4, 60.0, false},
  };
}

inline std::vector<ValidationSetting> correlated_settings() {
  return {
      {"1", 1, 1, 50.0, true},
      {"2", 2, 2, 50.0, true},
      {"3", 3, 3, 30.0, true},
      {"4", 4, 4, 80.0, true},
  };
}

inline SessionConfig session_for(const ValidationSetting& setting,
                                 double duration_s, std::uint64_t seed) {
  SessionConfig config;
  if (setting.correlated) {
    config.path_configs = {table1_config(setting.config_a)};
    config.correlated = true;
  } else {
    config.path_configs = {table1_config(setting.config_a),
                           table1_config(setting.config_b)};
  }
  config.num_flows = 2;
  config.mu_pps = setting.mu_pps;
  config.duration_s = duration_s;
  config.seed = seed;
  return config;
}

// Model parameters for a validation setting, estimated with backlogged
// probes (Section 2.2's sigma_k definition; see stream/session.hpp for why
// video-stream-measured p would bias the model under drop-tail).
inline ComposedParams model_params_for(const ValidationSetting& setting,
                                       std::uint64_t seed,
                                       double probe_duration_s = 1500.0) {
  ComposedParams params;
  params.mu_pps = setting.mu_pps;
  auto to_chain = [](const BackloggedProbe& probe) {
    TcpChainParams chain;
    chain.loss_rate = probe.loss_rate;
    chain.rtt_s = probe.rtt_s;
    chain.to_ratio = probe.to_ratio;
    chain.wmax = 20;
    chain.ack_every = 1;
    return chain;
  };
  if (setting.correlated) {
    const auto probes = measure_backlogged_paths(
        table1_config(setting.config_a), 2, seed, probe_duration_s);
    params.flows = {to_chain(probes[0]), to_chain(probes[1])};
  } else {
    const auto probe_a = measure_backlogged_paths(
        table1_config(setting.config_a), 1, seed, probe_duration_s);
    const auto probe_b = measure_backlogged_paths(
        table1_config(setting.config_b), 1, seed + 1, probe_duration_s);
    params.flows = {to_chain(probe_a[0]), to_chain(probe_b[0])};
  }
  return params;
}

// mean +/- 95% half-width over replications, formatted.
inline std::string fmt_ci(const std::vector<double>& samples) {
  const auto ci = confidence_interval(samples);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g +/- %.2g", ci.mean, ci.half_width);
  return buf;
}

}  // namespace dmp::bench
