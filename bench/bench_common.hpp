// Shared plumbing for the reproduction benches: the paper's validation
// settings, replication helpers, and model-parameter estimation.
//
// Configuration comes from exp::BenchOptions (validated DMP_* knobs) and
// every random quantity is seeded from a dmp::SeedStream rooted at
// DMP_SEED — replication seeds, backlogged-probe seeds and Monte-Carlo
// seeds live in disjoint domains (see src/exp/plan.hpp), so no two
// purposes can collide the way additive offsets (`seed + 1` vs `seed + r`)
// once did.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/background.hpp"
#include "exp/options.hpp"
#include "exp/plan.hpp"
#include "exp/runner.hpp"
#include "model/composed_chain.hpp"
#include "stream/session.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/seed_stream.hpp"
#include "util/stats.hpp"

namespace dmp::bench {

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// The paper's validation settings: Table-1 configuration pair + playback
// rate (Table 2 for independent paths, Table 3 for correlated paths).
struct ValidationSetting {
  std::string name;
  int config_a;
  int config_b;    // == config_a for homogeneous / correlated settings
  double mu_pps;
  bool correlated; // share one bottleneck (Fig. 6) vs. two paths (Fig. 3)
};

inline std::vector<ValidationSetting> independent_settings() {
  return {
      {"1-1", 1, 1, 50.0, false}, {"2-2", 2, 2, 50.0, false},
      {"3-3", 3, 3, 30.0, false}, {"4-4", 4, 4, 80.0, false},
      {"1-2", 1, 2, 50.0, false}, {"1-3", 1, 3, 40.0, false},
      {"2-3", 2, 3, 40.0, false}, {"3-4", 3, 4, 60.0, false},
  };
}

inline std::vector<ValidationSetting> correlated_settings() {
  return {
      {"1", 1, 1, 50.0, true},
      {"2", 2, 2, 50.0, true},
      {"3", 3, 3, 30.0, true},
      {"4", 4, 4, 80.0, true},
  };
}

// The session for one validation setting.  `config.seed` is left at its
// default — the experiment runner overwrites it with the replication seed.
inline SessionConfig session_for(const ValidationSetting& setting,
                                 double duration_s) {
  SessionConfig config;
  if (setting.correlated) {
    config.path_configs = {table1_config(setting.config_a)};
    config.correlated = true;
  } else {
    config.path_configs = {table1_config(setting.config_a),
                           table1_config(setting.config_b)};
  }
  config.num_flows = 2;
  config.mu_pps = setting.mu_pps;
  config.duration_s = duration_s;
  return config;
}

// An experiment plan over validation settings with shared knobs applied.
inline exp::ExperimentPlan plan_for(const std::string& name,
                                    const std::vector<ValidationSetting>& settings,
                                    const exp::BenchOptions& options,
                                    double duration_s) {
  exp::ExperimentPlan plan;
  plan.name = name;
  plan.replications = static_cast<std::size_t>(options.runs);
  plan.seed = options.seed;
  for (const auto& setting : settings) {
    SessionConfig config = session_for(setting, duration_s);
    // DMP_FAULTS applies the same fault plan to every session the bench
    // runs (empty by default — no injector is constructed).
    config.faults = options.faults;
    // DMP_SCHED swaps the DMP dispatch policy for every session ("pull"
    // by default — the paper's scheme, byte-identical to the old code).
    config.scheduler = options.sched;
    // DMP_QDISC swaps the bottleneck queue discipline for every session
    // ("droptail" by default — the paper's queues, byte-identical).
    config.qdisc = options.qdisc;
    // DMP_DES selects the event-queue backend ("calendar" by default;
    // pop order is bit-identical to "heap", only wall-clock changes).
    config.des = options.des;
    plan.settings.push_back({setting.name, std::move(config)});
  }
  // Attach observability / flight recording to the very first replication;
  // telemetry and the DES profiler attach to EVERY replication (the merged
  // sketch percentiles need every run), with file artifacts only from the
  // first so parallel workers never contend on one path.
  if (options.obs || options.trace || options.telemetry ||
      options.profile != 0) {
    plan.configure = [name, options](SessionConfig& config,
                                     std::size_t setting, std::size_t rep) {
      const bool first = setting == 0 && rep == 0;
      if (options.telemetry) {
        config.telemetry.enabled = true;
        config.telemetry.window_s = options.telemetry_window_s;
        config.telemetry.write_artifacts = first;
        config.telemetry.output_dir = bench_output_dir();
        config.telemetry.prefix = name + "_obs";
      }
      config.profile = options.profile != 0;
      config.profile_wall_time = options.profile == 2;
      if (!first) return;
      config.obs.enabled = options.obs;
      config.obs.flight_recorder = options.trace;
      config.obs.output_dir = bench_output_dir();
      config.obs.prefix = name + "_obs";
      config.obs.probe_interval_s = options.obs_probe_interval_s;
    };
  }
  return plan;
}

// Model parameters for a validation setting, estimated with backlogged
// probes (Section 2.2's sigma_k definition; see stream/session.hpp for why
// video-stream-measured p would bias the model under drop-tail).  The
// probe stream supplies one independent seed per probed path.
// `qdisc` probes under the same bottleneck discipline the sessions ran
// (default droptail), so per-qdisc model parameters reflect the loss/RTT
// process that discipline actually produces.
inline ComposedParams model_params_for(const ValidationSetting& setting,
                                       const SeedStream& probe_seeds,
                                       double probe_duration_s = 1500.0,
                                       const std::string& qdisc = "droptail") {
  ComposedParams params;
  params.mu_pps = setting.mu_pps;
  auto to_chain = [](const BackloggedProbe& probe) {
    TcpChainParams chain;
    chain.loss_rate = probe.loss_rate;
    chain.rtt_s = probe.rtt_s;
    chain.to_ratio = probe.to_ratio;
    chain.wmax = 20;
    chain.ack_every = 1;
    return chain;
  };
  if (setting.correlated) {
    const auto probes = measure_backlogged_paths(
        table1_config(setting.config_a), 2, probe_seeds.at(0),
        probe_duration_s, default_video_tcp(), qdisc);
    params.flows = {to_chain(probes[0]), to_chain(probes[1])};
  } else {
    const auto probe_a = measure_backlogged_paths(
        table1_config(setting.config_a), 1, probe_seeds.at(0),
        probe_duration_s, default_video_tcp(), qdisc);
    const auto probe_b = measure_backlogged_paths(
        table1_config(setting.config_b), 1, probe_seeds.at(1),
        probe_duration_s, default_video_tcp(), qdisc);
    params.flows = {to_chain(probe_a[0]), to_chain(probe_b[0])};
  }
  return params;
}

// mean +/- 95% half-width over replications, formatted.
inline std::string fmt_ci(const std::vector<double>& samples) {
  const auto ci = confidence_interval(samples);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g +/- %.2g", ci.mean, ci.half_width);
  return buf;
}

}  // namespace dmp::bench

// google-benchmark helpers shared by the perf_* guards.  Gated on
// DMP_BENCH_HAVE_BENCHMARK (set only on those targets) so the figure
// benches, which do not depend on google-benchmark, keep compiling this
// header unchanged.
#if defined(DMP_BENCH_HAVE_BENCHMARK)
#include <benchmark/benchmark.h>

namespace dmp::bench {

// items/s reporting for a fixed per-iteration work count — the shape
// bench_guard.py rates (items_per_second) across revisions.
inline void set_items_per_iteration(benchmark::State& state,
                                    std::int64_t items) {
  state.SetItemsProcessed(state.iterations() * items);
}

// One packet-level-session arm: run the session every iteration and report
// executed DES events as items, so items/s is an event rate comparable
// across arms (e.g. telemetry off vs on).
inline void run_session_arm(benchmark::State& state,
                            const SessionConfig& config) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = run_session(config);
    benchmark::DoNotOptimize(result.packets_generated);
    events += result.events_executed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

}  // namespace dmp::bench
#endif  // DMP_BENCH_HAVE_BENCHMARK
