// Fig. 9: required startup delay so that the late fraction stays below
// 1e-4, homogeneous paths, TO = 4, sigma_a/mu = 1.6.
//   (a) ratio set by varying the RTT; mu in {25, 50, 100} pkts/s and
//       p in {0.004, 0.02, 0.04} (settings whose implied RTT exceeds
//       600 ms are omitted, as in the paper);
//   (b) ratio set by varying mu; R in {100, 200, 300} ms.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

namespace {

RequiredDelayOptions options_from(const bench::Knobs& knobs) {
  RequiredDelayOptions options;
  options.min_consumptions = knobs.mc_min;
  options.max_consumptions = knobs.mc_max;
  options.tau_max_s = 60.0;
  options.seed = knobs.seed;
  return options;
}

}  // namespace

int main() {
  const bench::Knobs knobs;
  const double to = 4.0, ratio = 1.6;
  bench::banner("Fig. 9: required startup delay for f < 1e-4 "
                "(TO=4, sigma_a/mu=1.6)");

  CsvWriter csv(bench_output_dir() + "/fig9_required_delay.csv",
                {"panel", "loss_rate", "mu_pps", "rtt_ms", "required_tau_s",
                 "feasible"});

  std::printf("\n(a) ratio fixed by varying RTT\n");
  std::printf("%8s %6s %10s %14s\n", "p", "mu", "RTT(ms)", "required tau");
  for (double mu : {25.0, 50.0, 100.0}) {
    for (double p : {0.004, 0.02, 0.04}) {
      const double rtt = bench::rtt_for_ratio(p, to, mu, ratio);
      if (rtt > 0.6) {
        std::printf("%8.3f %6.0f %10.0f %14s\n", p, mu, rtt * 1e3,
                    "(omitted: RTT > 600 ms)");
        continue;
      }
      ComposedParams params = bench::homogeneous_setup(p, rtt, to, mu);
      const auto result = required_startup_delay(params, options_from(knobs));
      std::printf("%8.3f %6.0f %10.0f %11.0f s%s\n", p, mu, rtt * 1e3,
                  result.tau_s, result.feasible ? "" : "  (not reached)");
      csv.row({"a", CsvWriter::num(p), CsvWriter::num(mu),
               CsvWriter::num(rtt * 1e3), CsvWriter::num(result.tau_s),
               result.feasible ? "1" : "0"});
    }
  }

  std::printf("\n(b) ratio fixed by varying mu\n");
  std::printf("%8s %10s %8s %14s\n", "p", "RTT(ms)", "mu", "required tau");
  for (double rtt_ms : {100.0, 200.0, 300.0}) {
    for (double p : {0.004, 0.02, 0.04}) {
      const double mu = bench::mu_for_ratio(p, rtt_ms / 1e3, to, ratio);
      ComposedParams params =
          bench::homogeneous_setup(p, rtt_ms / 1e3, to, mu);
      auto options = options_from(knobs);
      options.tau_max_s = 120.0;  // high-loss large-RTT settings need more
      const auto result = required_startup_delay(params, options);
      std::printf("%8.3f %10.0f %8.1f %11.0f s%s\n", p, rtt_ms, mu,
                  result.tau_s, result.feasible ? "" : "  (not reached)");
      csv.row({"b", CsvWriter::num(p), CsvWriter::num(mu),
               CsvWriter::num(rtt_ms), CsvWriter::num(result.tau_s),
               result.feasible ? "1" : "0"});
    }
  }

  std::printf("\nexpected shape (paper): required tau ~ 10 s across panel "
              "(a) and most of (b); larger for R=300ms with p=0.04\n");
  std::printf("CSV: %s/fig9_required_delay.csv\n", bench_output_dir().c_str());
  return 0;
}
