// Fig. 9: required startup delay so that the late fraction stays below
// 1e-4, homogeneous paths, TO = 4, sigma_a/mu = 1.6.
//   (a) ratio set by varying the RTT; mu in {25, 50, 100} pkts/s and
//       p in {0.004, 0.02, 0.04} (settings whose implied RTT exceeds
//       600 ms are omitted, as in the paper);
//   (b) ratio set by varying mu; R in {100, 200, 300} ms.
// One runner work item per (panel, p, rate) point.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/report.hpp"
#include "net/qdisc/queue_discipline.hpp"
#include "obs/divergence/divergence.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  // Fig. 9 is analytic (no packet simulation), so a qdisc cannot change
  // its numbers — but a DMP_QDISC sweep driving all figures still gets a
  // per-qdisc artifact identity here so the sweep's fig9 JSONs never
  // overwrite the golden droptail one.
  const QdiscSpec qdisc_spec = QdiscSpec::parse(options.qdisc);
  const std::string qdisc_tag =
      qdisc_spec.droptail() ? "" : std::string("_") + qdisc_spec.kind_name();
  const double to = 4.0, ratio = 1.6;
  bench::banner("Fig. 9: required startup delay for f < 1e-4 "
                "(TO=4, sigma_a/mu=1.6)");

  CsvWriter csv(bench_output_dir() + "/fig9_required_delay.csv",
                {"panel", "loss_rate", "mu_pps", "rtt_ms", "required_tau_s",
                 "feasible"});

  struct Point {
    char panel;      // 'a' or 'b'
    double p;
    double mu;       // panel a input; panel b derived
    double rtt_s;    // panel a derived; panel b input
    double tau_max_s;
  };
  std::vector<Point> points;
  for (double mu : {25.0, 50.0, 100.0}) {
    for (double p : {0.004, 0.02, 0.04}) {
      points.push_back({'a', p, mu, bench::rtt_for_ratio(p, to, mu, ratio),
                        60.0});
    }
  }
  for (double rtt_ms : {100.0, 200.0, 300.0}) {
    for (double p : {0.004, 0.02, 0.04}) {
      // High-loss large-RTT settings need a higher tau ceiling.
      points.push_back({'b', p,
                        bench::mu_for_ratio(p, rtt_ms / 1e3, to, ratio),
                        rtt_ms / 1e3, 120.0});
    }
  }

  struct Row {
    bool omitted = false;
    RequiredDelayResult result{};
  };
  const auto mc_seeds = exp::mc_stream(options.seed);
  // With DMP_MODEL_SHARDS the parallelism moves inside each probe (the
  // sharded estimator runs its shards on DMP_THREADS workers), so the
  // outer sweep goes serial instead of oversubscribing.
  const std::size_t outer_threads =
      options.model_shards > 0 ? 1 : options.threads;
  const auto rows =
      exp::ExperimentRunner(outer_threads).map(points.size(), [&](std::size_t i) {
        const auto& point = points[i];
        Row row;
        if (point.panel == 'a' && point.rtt_s > 0.6) {
          row.omitted = true;
          return row;
        }
        ComposedParams params =
            bench::homogeneous_setup(point.p, point.rtt_s, to, point.mu);
        RequiredDelayOptions delay_options;
        delay_options.min_consumptions = options.mc_min;
        delay_options.max_consumptions = options.mc_max;
        delay_options.tau_max_s = point.tau_max_s;
        delay_options.seed = mc_seeds.at(i);
        delay_options.shards = options.model_shards;
        delay_options.threads = options.threads;
        row.result = required_startup_delay(params, delay_options);
        return row;
      });

  std::printf("\n(a) ratio fixed by varying RTT\n");
  std::printf("%8s %6s %10s %14s\n", "p", "mu", "RTT(ms)", "required tau");
  bool printed_b_header = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& point = points[i];
    if (point.panel == 'b' && !printed_b_header) {
      printed_b_header = true;
      std::printf("\n(b) ratio fixed by varying mu\n");
      std::printf("%8s %10s %8s %14s\n", "p", "RTT(ms)", "mu",
                  "required tau");
    }
    if (rows[i].omitted) {
      std::printf("%8.3f %6.0f %10.0f %14s\n", point.p, point.mu,
                  point.rtt_s * 1e3, "(omitted: RTT > 600 ms)");
      continue;
    }
    const auto& result = rows[i].result;
    if (point.panel == 'a') {
      std::printf("%8.3f %6.0f %10.0f %11.0f s%s\n", point.p, point.mu,
                  point.rtt_s * 1e3, result.tau_s,
                  result.feasible ? "" : "  (not reached)");
    } else {
      std::printf("%8.3f %10.0f %8.1f %11.0f s%s\n", point.p,
                  point.rtt_s * 1e3, point.mu, result.tau_s,
                  result.feasible ? "" : "  (not reached)");
    }
    csv.row({std::string(1, point.panel), CsvWriter::num(point.p),
             CsvWriter::num(point.mu), CsvWriter::num(point.rtt_s * 1e3),
             CsvWriter::num(result.tau_s), result.feasible ? "1" : "0"});
  }

  std::printf("\nexpected shape (paper): required tau ~ 10 s across panel "
              "(a) and most of (b); larger for R=300ms with p=0.04\n");

  // Divergence series: at the returned tau the late fraction must not
  // exceed the 1e-4 target — one-sided, since any undershoot is the
  // search doing its job.  Infeasible points (ceiling hit) are recorded
  // with their ceiling-tau estimate but judged one-sided all the same;
  // omitted points never enter the series.
  obs::DivergenceSeries divergence;
  divergence.name = "fig9" + qdisc_tag;
  divergence.metric = "late_fraction_at_tau";
  divergence.x_label = "tau_s";
  divergence.tolerance.one_sided = true;
  divergence.tolerance.abs = 0.0;
  divergence.tolerance.within_ci = false;
  const double target = RequiredDelayOptions{}.target_late_fraction;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (rows[i].omitted || !rows[i].result.feasible) continue;
    char label[64];
    std::snprintf(label, sizeof label, "%c/p%.3f/mu%.0f", points[i].panel,
                  points[i].p, points[i].mu);
    divergence.add(label, rows[i].result.tau_s, target,
                   rows[i].result.late_at_tau);
  }
  const auto dstats = divergence.stats();
  std::printf("divergence: %zu feasible point(s), %zu exceed the %.0e "
              "target at their returned tau\n",
              dstats.count, dstats.diverged, target);
  const std::string divergence_path =
      bench_output_dir() + "/DIVERGENCE_fig9" + qdisc_tag + ".json";
  if (obs::write_divergence_json({divergence}, divergence_path)) {
    std::printf("divergence: %s\n", divergence_path.c_str());
    exp::evaluate_slo_env(divergence_path);
  }
  std::printf("CSV: %s/fig9_required_delay.csv\n", bench_output_dir().c_str());
  return 0;
}
