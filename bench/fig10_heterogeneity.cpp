// Fig. 10: impact of path heterogeneity — required startup delay under
// homogeneous paths vs. heterogeneous pairs with the same aggregate
// achievable throughput.  TO = 4; gamma in {1.5, 2.0};
//   Case 1 (RTT):  p_o in {0.01, 0.04}, R_o = 150 ms;
//   Case 2 (loss): R_o in {100, 300} ms, p_o = 0.02;
// sigma_a/mu in {1.4, 1.6, 1.8}  ->  (4 + 4) x 3 = 24 heterogeneous points,
// one runner work item each (a homogeneous + a heterogeneous search).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/heterogeneity.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  const double to = 4.0;
  bench::banner("Fig. 10: required startup delay, homogeneous vs "
                "heterogeneous paths (TO=4)");

  CsvWriter csv(bench_output_dir() + "/fig10_heterogeneity.csv",
                {"case", "gamma", "p_o", "rtt_o_ms", "ratio", "tau_homo_s",
                 "tau_hetero_s"});

  struct Base {
    HeterogeneityCase kind;
    double p_o;
    double rtt_o_s;
    const char* label;
  };
  const std::vector<Base> bases{
      {HeterogeneityCase::kRtt, 0.01, 0.150, "case1 p=0.01 R=150ms"},
      {HeterogeneityCase::kRtt, 0.04, 0.150, "case1 p=0.04 R=150ms"},
      {HeterogeneityCase::kLoss, 0.02, 0.100, "case2 p=0.02 R=100ms"},
      {HeterogeneityCase::kLoss, 0.02, 0.300, "case2 p=0.02 R=300ms"},
  };

  struct Point {
    const Base* base;
    double gamma;
    double ratio;
  };
  std::vector<Point> grid;
  for (const auto& base : bases) {
    for (double gamma : {1.5, 2.0}) {
      for (double ratio : {1.4, 1.6, 1.8}) {
        grid.push_back({&base, gamma, ratio});
      }
    }
  }

  struct Row {
    RequiredDelayResult homo{}, hetero{};
  };
  const auto mc_seeds = exp::mc_stream(options.seed);
  // With DMP_MODEL_SHARDS the parallelism moves inside each probe (the
  // sharded estimator runs its shards on DMP_THREADS workers), so the
  // outer sweep goes serial instead of oversubscribing.
  const std::size_t outer_threads =
      options.model_shards > 0 ? 1 : options.threads;
  const auto rows =
      exp::ExperimentRunner(outer_threads).map(grid.size(), [&](std::size_t i) {
        const auto& point = grid[i];
        const auto homo_flow =
            bench::chain_of(point.base->p_o, point.base->rtt_o_s, to);
        const auto pair =
            heterogeneous_pair(homo_flow, point.base->kind, point.gamma);
        const double mu = bench::mu_for_ratio(point.base->p_o,
                                              point.base->rtt_o_s, to,
                                              point.ratio);
        RequiredDelayOptions delay_options;
        delay_options.min_consumptions = options.mc_min;
        delay_options.max_consumptions = options.mc_max;
        delay_options.tau_max_s = 90.0;
        delay_options.shards = options.model_shards;
        delay_options.threads = options.threads;

        Row row;
        ComposedParams homo;
        homo.flows = {homo_flow, homo_flow};
        homo.mu_pps = mu;
        delay_options.seed = mc_seeds.at(2 * i);
        row.homo = required_startup_delay(homo, delay_options);

        ComposedParams hetero;
        hetero.flows = {pair.flows[0], pair.flows[1]};
        hetero.mu_pps = mu;
        delay_options.seed = mc_seeds.at(2 * i + 1);
        row.hetero = required_startup_delay(hetero, delay_options);
        return row;
      });

  std::printf("%-24s %6s %6s %10s %12s %6s\n", "base", "gamma", "ratio",
              "tau homo", "tau hetero", "|d|");
  double max_abs_diff = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& point = grid[i];
    const double diff = rows[i].hetero.tau_s - rows[i].homo.tau_s;
    max_abs_diff = std::max(max_abs_diff, std::abs(diff));
    std::printf("%-24s %6.1f %6.1f %8.0f s %10.0f s %6.0f\n",
                point.base->label, point.gamma, point.ratio,
                rows[i].homo.tau_s, rows[i].hetero.tau_s, std::abs(diff));
    csv.row({point.base->kind == HeterogeneityCase::kRtt ? "1" : "2",
             CsvWriter::num(point.gamma), CsvWriter::num(point.base->p_o),
             CsvWriter::num(point.base->rtt_o_s * 1e3),
             CsvWriter::num(point.ratio), CsvWriter::num(rows[i].homo.tau_s),
             CsvWriter::num(rows[i].hetero.tau_s)});
  }
  std::printf("\nmax |tau_hetero - tau_homo| = %.0f s; expected (paper): "
              "points hug the diagonal — DMP is insensitive to path "
              "heterogeneity\n",
              max_abs_diff);
  std::printf("CSV: %s/fig10_heterogeneity.csv\n", bench_output_dir().c_str());
  return 0;
}
