// Fig. 11: DMP-streaming vs static streaming — required startup delay for
// f < 1e-4 on two homogeneous paths, TO = 4.
//
// Static streaming splits the stream odd/even, so it behaves as two
// independent single-path streams of rate mu/2 each (Section 7.4); its
// late fraction comes from the K = 1 composed model at rate mu/2.
// Settings mirror the paper's representative panel:
//   (R=100ms, 1.6) (R=200ms, 1.6) (R=300ms, 1.6) (R=300ms, 1.8)
//   (R=300ms, 2.0), each with p in {0.004, 0.02, 0.04} — 15 runner work
// items (one DMP + one static search each).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const auto options = exp::bench_options();
  const double to = 4.0;
  bench::banner("Fig. 11: DMP vs static streaming, required startup delay "
                "(TO=4)");

  CsvWriter csv(bench_output_dir() + "/fig11_static_vs_dmp.csv",
                {"rtt_ms", "ratio", "loss_rate", "mu_pps", "tau_static_s",
                 "static_feasible", "tau_dmp_s", "dmp_feasible"});

  struct Point {
    double rtt_ms;
    double ratio;
    double p;
  };
  std::vector<Point> grid;
  for (const auto& panel : std::vector<std::pair<double, double>>{
           {100, 1.6}, {200, 1.6}, {300, 1.6}, {300, 1.8}, {300, 2.0}}) {
    for (double p : {0.004, 0.02, 0.04}) {
      grid.push_back({panel.first, panel.second, p});
    }
  }

  struct Row {
    double mu = 0.0;
    RequiredDelayResult dmp{}, stat{};
  };
  const auto mc_seeds = exp::mc_stream(options.seed);
  const auto rows =
      exp::ExperimentRunner(options.threads).map(grid.size(), [&](std::size_t i) {
        const auto& point = grid[i];
        RequiredDelayOptions delay_options;
        delay_options.min_consumptions = options.mc_min;
        delay_options.max_consumptions = options.mc_max;
        delay_options.tau_max_s = 150.0;  // static streaming can need ~90 s

        Row row;
        row.mu = bench::mu_for_ratio(point.p, point.rtt_ms / 1e3, to,
                                     point.ratio);

        // DMP: two paths, shared buffer, full rate mu.
        ComposedParams dmp = bench::homogeneous_setup(
            point.p, point.rtt_ms / 1e3, to, row.mu);
        delay_options.seed = mc_seeds.at(2 * i);
        row.dmp = required_startup_delay(dmp, delay_options);

        // Static: each path carries an independent mu/2 stream.
        ComposedParams single;
        single.flows = {bench::chain_of(point.p, point.rtt_ms / 1e3, to)};
        single.mu_pps = row.mu / 2.0;
        delay_options.seed = mc_seeds.at(2 * i + 1);
        row.stat = required_startup_delay(single, delay_options);
        return row;
      });

  std::printf("%10s %6s %8s | %12s %12s\n", "R(ms)", "ratio", "p", "static",
              "DMP");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& point = grid[i];
    const auto& row = rows[i];
    std::printf("%10.0f %6.1f %8.3f | %9.0f s%s %9.0f s%s\n", point.rtt_ms,
                point.ratio, point.p, row.stat.tau_s,
                row.stat.feasible ? " " : "+", row.dmp.tau_s,
                row.dmp.feasible ? " " : "+");
    csv.row({CsvWriter::num(point.rtt_ms), CsvWriter::num(point.ratio),
             CsvWriter::num(point.p), CsvWriter::num(row.mu),
             CsvWriter::num(row.stat.tau_s), row.stat.feasible ? "1" : "0",
             CsvWriter::num(row.dmp.tau_s), row.dmp.feasible ? "1" : "0"});
  }
  std::printf("\n('+' marks searches that hit the tau ceiling)\n");
  std::printf("expected shape (paper): DMP needs a much smaller startup "
              "delay than static streaming in every setting\n");
  std::printf("CSV: %s/fig11_static_vs_dmp.csv\n", bench_output_dir().c_str());
  return 0;
}
