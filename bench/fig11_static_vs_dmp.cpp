// Fig. 11: DMP-streaming vs static streaming — required startup delay for
// f < 1e-4 on two homogeneous paths, TO = 4.
//
// Static streaming splits the stream odd/even, so it behaves as two
// independent single-path streams of rate mu/2 each (Section 7.4); its
// late fraction comes from the K = 1 composed model at rate mu/2.
// Settings mirror the paper's representative panel:
//   (R=100ms, 1.6) (R=200ms, 1.6) (R=300ms, 1.6) (R=300ms, 1.8)
//   (R=300ms, 2.0), each with p in {0.004, 0.02, 0.04}.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "param_space.hpp"

using namespace dmp;

int main() {
  const bench::Knobs knobs;
  const double to = 4.0;
  bench::banner("Fig. 11: DMP vs static streaming, required startup delay "
                "(TO=4)");

  RequiredDelayOptions options;
  options.min_consumptions = knobs.mc_min;
  options.max_consumptions = knobs.mc_max;
  options.tau_max_s = 150.0;  // static streaming can need ~90 s
  options.seed = knobs.seed;

  CsvWriter csv(bench_output_dir() + "/fig11_static_vs_dmp.csv",
                {"rtt_ms", "ratio", "loss_rate", "mu_pps", "tau_static_s",
                 "static_feasible", "tau_dmp_s", "dmp_feasible"});

  struct Panel {
    double rtt_ms;
    double ratio;
  };
  const std::vector<Panel> panels{
      {100, 1.6}, {200, 1.6}, {300, 1.6}, {300, 1.8}, {300, 2.0}};

  std::printf("%10s %6s %8s | %12s %12s\n", "R(ms)", "ratio", "p", "static",
              "DMP");
  for (const auto& panel : panels) {
    for (double p : {0.004, 0.02, 0.04}) {
      const double mu =
          bench::mu_for_ratio(p, panel.rtt_ms / 1e3, to, panel.ratio);

      // DMP: two paths, shared buffer, full rate mu.
      ComposedParams dmp =
          bench::homogeneous_setup(p, panel.rtt_ms / 1e3, to, mu);
      const auto tau_dmp = required_startup_delay(dmp, options);

      // Static: each path carries an independent mu/2 stream.
      ComposedParams single;
      single.flows = {bench::chain_of(p, panel.rtt_ms / 1e3, to)};
      single.mu_pps = mu / 2.0;
      const auto tau_static = required_startup_delay(single, options);

      std::printf("%10.0f %6.1f %8.3f | %9.0f s%s %9.0f s%s\n", panel.rtt_ms,
                  panel.ratio, p, tau_static.tau_s,
                  tau_static.feasible ? " " : "+", tau_dmp.tau_s,
                  tau_dmp.feasible ? " " : "+");
      csv.row({CsvWriter::num(panel.rtt_ms), CsvWriter::num(panel.ratio),
               CsvWriter::num(p), CsvWriter::num(mu),
               CsvWriter::num(tau_static.tau_s),
               tau_static.feasible ? "1" : "0",
               CsvWriter::num(tau_dmp.tau_s), tau_dmp.feasible ? "1" : "0"});
    }
  }
  std::printf("\n('+' marks searches that hit the tau ceiling)\n");
  std::printf("expected shape (paper): DMP needs a much smaller startup "
              "delay than static streaming in every setting\n");
  std::printf("CSV: %s/fig11_static_vs_dmp.csv\n", bench_output_dir().c_str());
  return 0;
}
