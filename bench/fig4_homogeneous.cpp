// Fig. 4: validation for independent homogeneous paths (Setting 2-2).
#include "fig_validation.hpp"

int main() {
  dmp::bench::run_validation_figure(
      dmp::bench::ValidationSetting{"2-2", 2, 2, 50.0, false}, "fig4");
  return 0;
}
